//! Symmetry reduction over interchangeable operations.
//!
//! Backtracking membership search explores one *matched set* of spans at
//! a time. When a history contains several operations that are
//! indistinguishable to the specification — same object, method,
//! argument and return value, and the same real-time constraints — the
//! search tree contains one isomorphic subtree per way of picking *which
//! of them* is matched first. Memoization alone cannot collapse these:
//! the matched bit-sets differ even though the residual search problems
//! are identical.
//!
//! This module computes, once per history, the **interchangeability
//! classes** of spans and provides a canonicalization of matched
//! bit-sets under permutation within each class. The engine then keys
//! its failed-state memo on the canonical form, so all `C(n, k)` ways of
//! matching `k` ops out of an `n`-clone class share one memo entry.
//!
//! ## Soundness
//!
//! Two spans `i`, `j` are placed in one class only if:
//!
//! 1. they denote the same operation: equal object, method, argument,
//!    completeness and return value;
//! 2. they have identical order constraint sets: the same predecessors
//!    and the same successors under the happens-before relation the
//!    search runs over ([`crate::history::PartialHistory`]).
//!
//! Swapping `i` and `j` in any matched set then maps every valid
//! CA-trace extension to a valid one: the spec's transition relation
//! sees operations only through [`crate::op::Operation`]-level data
//! (condition 1 makes `i` and `j` identical there *except* the thread
//! id), and the minimal-candidate frontier is determined by the
//! happens-before order (condition 2 makes it invariant).
//!
//! The argument is order-generic: the search consults the ordering only
//! through pred sets (minimality) and pairwise concurrency (element
//! membership), and both are invariant under a within-class swap by
//! condition 2. It therefore holds unchanged when the relation is a
//! causal partial order rather than `≺H` — which is why
//! [`SymClasses::of_order`] takes the relation as a parameter instead
//! of hard-coding `≺H`.
//!
//! The one residual distinction is the **thread id**. Condition 2
//! forces class members to be pairwise concurrent (a span never equals
//! its own predecessor set plus itself), and no two concurrent spans
//! share a thread under either relation family: a well-formed history
//! interleaves no two real-time-concurrent spans on one thread, and a
//! causal order contains per-thread session order by construction — so
//! class members always carry *distinct* thread ids, and a permutation
//! within a class permutes threads injectively. Specifications in this crate consume
//! thread ids only through *intra-element* equality tests (e.g. "an
//! exchange pair must come from two distinct threads"), which injective
//! renaming preserves. A spec that discriminated on absolute thread ids
//! (or stored them in its state) would break this assumption, which is
//! why the engine exposes the reduction behind
//! [`CheckOptions::symmetry`](crate::engine::CheckOptions) rather than
//! applying it unconditionally.

use crate::bitset::BitSet;
use crate::history::{HbRelation, PartialHistory, Span};

/// Interchangeability classes of a history's spans, precomputed once and
/// shared read-only across search workers.
///
/// Only classes with at least two members are stored — singletons cannot
/// be permuted and would cost a probe per memo operation for nothing.
#[derive(Debug, Clone, Default)]
pub struct SymClasses {
    /// Each class: the member span indices, ascending.
    classes: Vec<Vec<usize>>,
}

impl SymClasses {
    /// Computes the interchangeability classes of `spans` under the
    /// real-time order `≺H`.
    pub fn of(spans: &[Span]) -> Self {
        Self::of_order(spans, &HbRelation::real_time(spans))
    }

    /// Computes the interchangeability classes of `spans` under an
    /// arbitrary happens-before relation: constraint sets (condition 2)
    /// are the relation's pred/succ sets instead of `≺H`'s. See the
    /// module docs for why the soundness argument carries over to partial
    /// orders.
    pub fn of_order(spans: &[Span], hb: &HbRelation) -> Self {
        let n = spans.len();
        // Pred sets as sorted slices double as set fingerprints; succs
        // are implied by preds over a fixed span set *only* if we check
        // them too (preds alone would let a "first" clone and "last"
        // clone of a chain merge), so compare both.
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut assigned = vec![false; n];
        for i in 0..n {
            if assigned[i] {
                continue;
            }
            let mut class = vec![i];
            for j in (i + 1)..n {
                if assigned[j] {
                    continue;
                }
                if Self::interchangeable(&spans[i], &spans[j])
                    && hb.preds(i) == hb.preds(j)
                    && hb.succs(i) == hb.succs(j)
                {
                    class.push(j);
                }
            }
            for &m in &class {
                assigned[m] = true;
            }
            if class.len() >= 2 {
                classes.push(class);
            }
        }
        SymClasses { classes }
    }

    /// Same operation as far as any spec can tell (modulo thread id).
    fn interchangeable(a: &Span, b: &Span) -> bool {
        a.object == b.object && a.method == b.method && a.arg == b.arg && a.ret == b.ret
        // `ret` equality covers completeness: both None (pending) or
        // both Some(equal value).
    }

    /// True when no span is interchangeable with another: the reduction
    /// is a no-op and callers can skip canonicalization entirely.
    pub fn is_trivial(&self) -> bool {
        self.classes.is_empty()
    }

    /// Number of non-singleton classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when there are no non-singleton classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Canonicalizes a matched set under within-class permutation: for
    /// each class, the *count* of matched members is preserved but the
    /// specific members are normalized to the class's first `count`
    /// (ascending). Returns `None` when `bits` is already canonical —
    /// the common case on small frontiers, kept allocation-free.
    pub fn canonical_bits(&self, bits: &BitSet) -> Option<BitSet> {
        // First pass: detect non-canonical classes without allocating.
        let mut dirty = false;
        'scan: for class in &self.classes {
            let mut expecting = true;
            for &m in class {
                let set = bits.contains(m);
                if set && !expecting {
                    // A gap before a set bit: not the prefix pattern.
                    dirty = true;
                    break 'scan;
                }
                if !set {
                    expecting = false;
                }
            }
        }
        if !dirty {
            return None;
        }
        let mut canon = bits.clone();
        for class in &self.classes {
            let count = class.iter().filter(|&&m| bits.contains(m)).count();
            for (k, &m) in class.iter().enumerate() {
                if k < count {
                    canon.insert(m);
                } else {
                    canon.remove(m);
                }
            }
        }
        Some(canon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Method, ObjectId, ThreadId, Value};

    fn span(inv: usize, resp: Option<usize>, thread: u32, arg: i64, ret: Option<Value>) -> Span {
        Span {
            inv,
            resp,
            thread: ThreadId(thread),
            object: ObjectId(0),
            method: Method("m"),
            arg: Value::Int(arg),
            ret,
        }
    }

    #[test]
    fn identical_concurrent_ops_form_one_class() {
        // Three identical fully-concurrent ops + one different.
        let spans = vec![
            span(0, Some(10), 1, 5, Some(Value::Int(1))),
            span(1, Some(11), 2, 5, Some(Value::Int(1))),
            span(2, Some(12), 3, 5, Some(Value::Int(1))),
            span(3, Some(13), 4, 9, Some(Value::Int(1))),
        ];
        let sym = SymClasses::of(&spans);
        assert_eq!(sym.len(), 1);
        assert_eq!(sym.classes[0], vec![0, 1, 2]);
    }

    #[test]
    fn real_time_order_splits_classes() {
        // Same op, but the second strictly follows the first.
        let spans = vec![
            span(0, Some(1), 1, 5, Some(Value::Int(1))),
            span(2, Some(3), 1, 5, Some(Value::Int(1))),
        ];
        let sym = SymClasses::of(&spans);
        assert!(sym.is_trivial(), "ordered clones are not interchangeable");
    }

    #[test]
    fn canonicalization_normalizes_to_prefix() {
        let spans = vec![
            span(0, Some(10), 1, 5, Some(Value::Int(1))),
            span(1, Some(11), 2, 5, Some(Value::Int(1))),
            span(2, Some(12), 3, 5, Some(Value::Int(1))),
        ];
        let sym = SymClasses::of(&spans);
        // {2} and {1} both canonicalize to {0}.
        let mut b = BitSet::new(3);
        b.insert(2);
        let canon = sym.canonical_bits(&b).expect("non-canonical");
        assert!(canon.contains(0) && !canon.contains(1) && !canon.contains(2));
        let mut b1 = BitSet::new(3);
        b1.insert(1);
        assert_eq!(sym.canonical_bits(&b1), Some(canon.clone()));
        // {0} is already canonical: zero-alloc fast path.
        let mut b0 = BitSet::new(3);
        b0.insert(0);
        assert_eq!(sym.canonical_bits(&b0), None);
        // {0,2} ≡ {0,1}.
        let mut b02 = BitSet::new(3);
        b02.insert(0);
        b02.insert(2);
        let c = sym.canonical_bits(&b02).expect("non-canonical");
        assert!(c.contains(0) && c.contains(1) && !c.contains(2));
        // Full set is canonical.
        let mut all = BitSet::new(3);
        for i in 0..3 {
            all.insert(i);
        }
        assert_eq!(sym.canonical_bits(&all), None);
    }

    #[test]
    fn causal_order_reshapes_classes() {
        // Two identical ops on distinct threads, strictly ordered in real
        // time: `of` splits them, but a session-only causal order leaves
        // them concurrent and merges them into one class.
        let spans = vec![
            span(0, Some(1), 1, 5, Some(Value::Int(1))),
            span(2, Some(3), 2, 5, Some(Value::Int(1))),
        ];
        assert!(SymClasses::of(&spans).is_trivial());
        let causal = HbRelation::causal(&spans, &[]).unwrap();
        let sym = SymClasses::of_order(&spans, &causal);
        assert_eq!(sym.len(), 1);
        assert_eq!(sym.classes[0], vec![0, 1]);
        // An explicit hb edge restores the ordering constraint and splits
        // the class again.
        let edged = HbRelation::causal(&spans, &[(0, 1)]).unwrap();
        assert!(SymClasses::of_order(&spans, &edged).is_trivial());
    }

    #[test]
    fn pending_and_complete_do_not_mix() {
        let spans = vec![
            span(0, Some(10), 1, 5, Some(Value::Int(1))),
            span(1, None, 2, 5, None),
        ];
        let sym = SymClasses::of(&spans);
        assert!(sym.is_trivial());
    }
}
