//! Causal-mode membership checking: CAL over a happens-before partial
//! order instead of the real-time total order.
//!
//! On weak-memory multicores most real executions are only *partially*
//! ordered: cross-thread real-time ordering is an artifact of the
//! recorder's clock, not something the memory model guarantees the
//! threads observed (Doherty & Derrick, "Linearizability and Causality";
//! Doherty, Derrick, Dongol & Wehrheim, "Causal Linearizability").
//! Causal mode re-runs the CAL membership search of [`crate::check`] with
//! the order relation swapped underneath: linearizations must respect
//! only *happens-before* — per-thread session order plus whatever
//! synchronization edges the trace explicitly declares — rather than
//! `≺H`.
//!
//! The mode is a thin wrapper over the same `CalDomain` /
//! [`crate::engine`] machinery, instantiated with an
//! [`HbRelation`] built by [`causal_order`]:
//!
//! - **annotated traces** (kvlog `hb` edges, a session-order directive,
//!   Jepsen `:process` session edges selected by the CLI) get
//!   `session ∪ edges`, transitively closed;
//! - **unannotated traces** should be checked with
//!   [`HbRelation::real_time`] — the total-order instance — on which
//!   causal mode agrees with CAL mode by construction (the differential
//!   anchor the test-suite pins).
//!
//! Two consequences of a genuinely partial order are handled here rather
//! than in the engine: per-object decomposition is disabled (session
//! edges cross objects, so objects are no longer independent; the
//! parallel driver falls back to root-frontier splitting), and symmetry
//! classes are recomputed from hb constraint sets
//! ([`crate::symmetry::SymClasses::of_order`]).

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

use crate::check::{reconstruct_completion, steps_to_trace, CalDomain};
use crate::engine::{self, SpecRef};
use crate::history::{HbError, HbRelation, History, HistoryError};
use crate::spec::CaSpec;
use crate::trace::CaTrace;

pub use crate::engine::{CheckError, CheckOptions, CheckOutcome, Verdict};

/// Why a causal order could not be built from a history and its declared
/// edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalOrderError {
    /// The history itself is not well-formed.
    IllFormed(HistoryError),
    /// The declared happens-before edges are malformed (out of range,
    /// self-edge, or cyclic together with session order).
    Order(HbError),
}

impl fmt::Display for CausalOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalOrderError::IllFormed(e) => write!(f, "ill-formed history: {e}"),
            CausalOrderError::Order(e) => e.fmt(f),
        }
    }
}

impl Error for CausalOrderError {}

impl From<HistoryError> for CausalOrderError {
    fn from(e: HistoryError) -> Self {
        CausalOrderError::IllFormed(e)
    }
}

impl From<HbError> for CausalOrderError {
    fn from(e: HbError) -> Self {
        CausalOrderError::Order(e)
    }
}

/// Builds the causal happens-before order of `history`: per-thread
/// session order unioned with the declared `edges` (pairs of operation
/// indices in invocation order, source happens-before target),
/// transitively closed.
///
/// # Errors
///
/// Returns [`CausalOrderError`] when the history is ill-formed or the
/// edges are (out of range, self-edge, or cyclic with session order).
pub fn causal_order(
    history: &History,
    edges: &[(usize, usize)],
) -> Result<HbRelation, CausalOrderError> {
    let spans = history.try_spans()?;
    Ok(HbRelation::causal(&spans, edges)?)
}

/// Decides whether `history` is causally CAL — a member of `spec` under
/// the happens-before order `hb` — with default options.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
///
/// # Examples
///
/// A stale read that violates linearizability in real time is explained
/// by store-buffer reordering once only session order is required:
///
/// ```
/// use cal_core::{causal, check, Action, History, Method, ObjectId, ThreadId, Value};
/// use cal_core::spec::{Invocation, SeqAsCa, SeqSpec};
/// use cal_core::op::Operation;
/// #[derive(Debug, Clone)]
/// struct Reg;
/// impl SeqSpec for Reg {
///     type State = i64;
///     fn initial(&self) -> i64 { 0 }
///     fn apply(&self, s: &i64, op: &Operation) -> Option<i64> {
///         match op.method.0 {
///             "write" => op.arg.as_int(),
///             "read" => (op.ret == Value::Int(*s)).then_some(*s),
///             _ => None,
///         }
///     }
///     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// }
/// let o = ObjectId(0);
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(1), o, Method("write"), Value::Int(1)),
///     Action::response(ThreadId(1), o, Method("write"), Value::Unit),
///     Action::invoke(ThreadId(2), o, Method("read"), Value::Unit),
///     Action::response(ThreadId(2), o, Method("read"), Value::Int(0)),
/// ]);
/// let spec = SeqAsCa::new(Reg);
/// assert!(!check::is_cal(&h, &spec)?);           // stale read: not CAL
/// let hb = causal::causal_order(&h, &[]).unwrap(); // session order only
/// let outcome = causal::check_causal(&h, &spec, &hb)?;
/// assert!(outcome.verdict.is_cal());             // reordering explains it
/// # Ok::<(), cal_core::check::CheckError>(())
/// ```
pub fn check_causal<S: CaSpec>(
    history: &History,
    spec: &S,
    hb: &HbRelation,
) -> Result<CheckOutcome, CheckError> {
    check_causal_with(history, spec, hb, &CheckOptions::default())
}

/// Like [`check_causal`], with explicit [`CheckOptions`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_causal_with<S: CaSpec>(
    history: &History,
    spec: &S,
    hb: &HbRelation,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError> {
    let domain = CalDomain::with_order(Cow::Borrowed(history), SpecRef::Borrowed(spec), hb.clone())?;
    Ok(engine::search(&domain, options)?.map_witness(steps_to_trace))
}

/// Like [`check_causal_with`], on the engine's parallel driver. Per-object
/// decomposition is disabled under a genuinely partial order, so the
/// driver uses root-frontier splitting with a shared memo.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed
/// and [`CheckError::SpecPanicked`] if the specification panics.
pub fn check_causal_par_with<S>(
    history: &History,
    spec: &S,
    hb: &HbRelation,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let domain = CalDomain::with_order(Cow::Borrowed(history), SpecRef::Borrowed(spec), hb.clone())?;
    Ok(engine::search_par(&domain, options)?.map_witness(steps_to_trace))
}

/// Convenience predicate: `Ok(true)` iff the history is causally CAL
/// under `hb`.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] for ill-formed histories,
/// [`CheckError::SpecPanicked`] when the spec panics, and
/// [`CheckError::Undecided`] when the default node budget runs out before
/// the search decides.
pub fn is_causal<S: CaSpec>(
    history: &History,
    spec: &S,
    hb: &HbRelation,
) -> Result<bool, CheckError> {
    let outcome = check_causal(history, spec, hb)?;
    match outcome.verdict {
        Verdict::Cal(_) => Ok(true),
        Verdict::NotCal => Ok(false),
        undecided => Err(CheckError::Undecided(undecided)),
    }
}

/// Validates a causal-mode witness: the specification must accept
/// `witness`, and the completion of `history` it implies must agree with
/// it under `hb` restricted to the completion's surviving operations
/// ([`crate::agree::agrees_under`]).
///
/// The restriction preserves ordering derived transitively *through* a
/// dropped pending invocation — the closure is computed before the
/// restriction — so dropping an operation never relaxes constraints
/// between survivors. This is the oracle the causal differential tests
/// use to cross-validate witnesses from the parallel driver.
pub fn witness_explains_causal<S: CaSpec>(
    history: &History,
    spec: &S,
    witness: &CaTrace,
    hb: &HbRelation,
) -> bool {
    if history.validate().is_err() || !spec.accepts(witness) {
        return false;
    }
    match reconstruct_completion(history, witness) {
        Some((completion, kept)) => {
            let restricted = hb.restrict(&kept);
            crate::agree::agrees_under(&completion, witness, &restricted).is_some()
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::check;
    use crate::history::PartialHistory;
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::op::Operation;
    use crate::spec::{Invocation, SeqAsCa, SeqSpec};

    const R: ObjectId = ObjectId(0);
    const WRITE: Method = Method("write");
    const READ: Method = Method("read");

    /// A sequential register: `read` returns the last written value
    /// (initially 0).
    #[derive(Debug, Clone)]
    struct Register;

    impl SeqSpec for Register {
        type State = i64;

        fn initial(&self) -> i64 {
            0
        }

        fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
            match op.method {
                WRITE => {
                    if op.ret != Value::Unit {
                        return None;
                    }
                    op.arg.as_int()
                }
                READ => (op.ret == Value::Int(*state)).then_some(*state),
                _ => None,
            }
        }

        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            match inv.method {
                WRITE => vec![Value::Unit],
                READ => (0..4).map(Value::Int).collect(),
                _ => vec![],
            }
        }
    }

    fn stale_read() -> History {
        History::from_actions(vec![
            Action::invoke(ThreadId(1), R, WRITE, Value::Int(1)),
            Action::response(ThreadId(1), R, WRITE, Value::Unit),
            Action::invoke(ThreadId(2), R, READ, Value::Unit),
            Action::response(ThreadId(2), R, READ, Value::Int(0)),
        ])
    }

    #[test]
    fn session_order_explains_a_stale_read() {
        let h = stale_read();
        let spec = SeqAsCa::new(Register);
        assert!(!check::is_cal(&h, &spec).unwrap());
        let hb = causal_order(&h, &[]).unwrap();
        let outcome = check_causal(&h, &spec, &hb).unwrap();
        let Verdict::Cal(witness) = &outcome.verdict else {
            panic!("expected causal acceptance, got {:?}", outcome.verdict);
        };
        assert!(witness_explains_causal(&h, &spec, witness, &hb));
    }

    #[test]
    fn an_explicit_edge_restores_the_rejection() {
        // Declaring write ≺hb read (the store became visible) makes the
        // stale read a genuine violation again.
        let h = stale_read();
        let spec = SeqAsCa::new(Register);
        let hb = causal_order(&h, &[(0, 1)]).unwrap();
        assert!(!is_causal(&h, &spec, &hb).unwrap());
    }

    #[test]
    fn real_time_order_makes_causal_agree_with_cal() {
        let histories = vec![
            stale_read(),
            History::from_actions(vec![
                Action::invoke(ThreadId(1), R, WRITE, Value::Int(1)),
                Action::invoke(ThreadId(2), R, READ, Value::Unit),
                Action::response(ThreadId(1), R, WRITE, Value::Unit),
                Action::response(ThreadId(2), R, READ, Value::Int(1)),
            ]),
        ];
        let spec = SeqAsCa::new(Register);
        for h in histories {
            let hb = HbRelation::real_time(&h.spans());
            let cal = check::is_cal(&h, &spec).unwrap();
            let causal = is_causal(&h, &spec, &hb).unwrap();
            assert_eq!(cal, causal, "modes disagree on {h}");
        }
    }

    #[test]
    fn cyclic_edges_are_an_error() {
        let h = stale_read();
        match causal_order(&h, &[(0, 1), (1, 0)]) {
            Err(CausalOrderError::Order(HbError::Cycle { .. })) => {}
            other => panic!("expected a cycle error, got {other:?}"),
        }
        match causal_order(&h, &[(0, 9)]) {
            Err(CausalOrderError::Order(HbError::EdgeOutOfRange { .. })) => {}
            other => panic!("expected out-of-range, got {other:?}"),
        }
    }

    #[test]
    fn session_order_is_preserved_within_threads() {
        // Same thread writes 1 then reads 0: session order forbids the
        // reorder even causally.
        let h = History::from_actions(vec![
            Action::invoke(ThreadId(1), R, WRITE, Value::Int(1)),
            Action::response(ThreadId(1), R, WRITE, Value::Unit),
            Action::invoke(ThreadId(1), R, READ, Value::Unit),
            Action::response(ThreadId(1), R, READ, Value::Int(0)),
        ]);
        let spec = SeqAsCa::new(Register);
        let hb = causal_order(&h, &[]).unwrap();
        assert!(hb.precedes(0, 1));
        assert!(!is_causal(&h, &spec, &hb).unwrap());
    }

    #[test]
    fn parallel_driver_matches_sequential_under_partial_order() {
        let h = stale_read();
        let spec = SeqAsCa::new(Register);
        let hb = causal_order(&h, &[]).unwrap();
        for threads in [2, 4] {
            let options = CheckOptions { threads, ..CheckOptions::default() };
            let outcome = check_causal_par_with(&h, &spec, &hb, &options).unwrap();
            assert!(outcome.verdict.is_cal(), "threads={threads}: {:?}", outcome.verdict);
        }
    }
}
