//! Checker observability: search statistics sinks and structured run
//! reports.
//!
//! The CAL membership search ([`crate::check`], [`crate::par`]) is an
//! exponential backtracking search whose cost profile — where the nodes
//! went, how wide the frontier was, whether the memo table pruned or
//! merely contended — is invisible from a bare [`Verdict`]. This module
//! makes the search observable without slowing it down when nobody is
//! watching:
//!
//! - [`StatsSink`] is a callback trait the search invokes at its
//!   instrumentation points (node expansions, element attempts, memo
//!   probes per shard, frontier widths, per-object decomposition
//!   timings, budget exhaustion and interrupt causes). Every method has
//!   a no-op default. The sink is optional — [`CheckOptions::sink`] is
//!   `None` by default, and the search guards every callback behind one
//!   branch on that `Option`, so a disabled sink costs a predictable
//!   never-taken branch per event and no allocation.
//! - [`CountingSink`] is the batteries-included implementation: lock-free
//!   atomic counters, safe to share across the parallel checker's
//!   workers.
//! - [`SearchReport`] is the structured end-of-run summary a
//!   [`CountingSink`] produces, serializable as JSON
//!   ([`SearchReport::to_json`]) and renderable as a human explanation of
//!   why a verdict was slow or undecided ([`SearchReport::explain`]).
//!
//! # Examples
//!
//! Attach a counting sink to a check and read the report:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Instant;
//! use cal_core::check::{check_cal_with, CheckOptions};
//! use cal_core::obs::CountingSink;
//! use cal_core::text::parse_history;
//! # use cal_core::spec::{CaSpec, Invocation};
//! # use cal_core::trace::CaElement;
//! # use cal_core::Value;
//! # #[derive(Debug)]
//! # struct AnySingleton;
//! # impl CaSpec for AnySingleton {
//! #     type State = ();
//! #     fn initial(&self) {}
//! #     fn step(&self, _: &(), e: &CaElement) -> Option<()> { (e.len() == 1).then_some(()) }
//! #     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
//! # }
//! let h = parse_history("t1 inv o0.noop 0\nt1 res o0.noop 0\n").unwrap();
//! let sink = Arc::new(CountingSink::new());
//! let options = CheckOptions { sink: Some(sink.clone()), ..CheckOptions::default() };
//! let start = Instant::now();
//! let outcome = check_cal_with(&h, &AnySingleton, &options).unwrap();
//! let report = sink.report(&outcome, &options, start.elapsed());
//! assert!(report.nodes > 0);
//! assert!(report.to_json().contains("\"nodes\""));
//! ```
//!
//! A custom sink only needs the events it cares about (the rest default
//! to no-ops); see `examples/observability.rs` for a full custom sink
//! driving a live elimination stack.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::check::{CheckOptions, CheckOutcome, InterruptReason, Verdict};
use crate::ids::ObjectId;

/// Number of shard buckets a [`CountingSink`] tracks memo traffic in.
///
/// Shard indices reported by the search come from the shared memo's
/// key-hash bucketing (the lock-free [`crate::fpmemo::FpMemo`] reports
/// `hash mod MEMO_SHARD_BUCKETS`; the mutex-striped
/// [`crate::par::ShardedMemo`] reports its stripe index, up to 512,
/// folded into this many buckets). The sequential checker's private memo
/// always reports shard 0.
pub const MEMO_SHARD_BUCKETS: usize = 64;

/// How one object's subsearch ended under the per-object decomposition
/// of [`crate::par::check_cal_par_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectOutcome {
    /// The subhistory is CAL (a witness was found).
    Cal,
    /// The subhistory was refuted — decisive for the whole history.
    NotCal,
    /// The shared node budget ran out inside this subsearch.
    Exhausted,
    /// A deadline, user cancellation or sibling-refutation stop latch
    /// wound this subsearch down early.
    Interrupted,
    /// The specification panicked inside this subsearch.
    SpecPanicked,
}

impl ObjectOutcome {
    /// A stable lower-case name, used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            ObjectOutcome::Cal => "cal",
            ObjectOutcome::NotCal => "not-cal",
            ObjectOutcome::Exhausted => "exhausted",
            ObjectOutcome::Interrupted => "interrupted",
            ObjectOutcome::SpecPanicked => "spec-panicked",
        }
    }
}

impl fmt::Display for ObjectOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A sink for search events, threaded through the sequential and
/// parallel checkers via [`CheckOptions::sink`].
///
/// Implementations must be thread-safe: the parallel checker invokes the
/// sink concurrently from every worker. All methods default to no-ops,
/// so a custom sink implements only the events it cares about. Callbacks
/// happen on the search's hot path — keep them cheap (atomic counters,
/// not locks or I/O).
pub trait StatsSink: Send + Sync {
    /// A search node was expanded (after it was charged to the budget).
    fn on_node(&self) {}

    /// A node's frontier of minimal operations had `width` candidates.
    /// Called once per expanded node, in expansion order, so the stream
    /// of widths tracks frontier shape over time.
    fn on_frontier(&self, width: usize) {
        let _ = width;
    }

    /// A candidate CA-element was tried against the specification.
    fn on_element_tried(&self) {}

    /// A memo probe hit a previously refuted state in `shard`.
    fn on_memo_hit(&self, shard: usize) {
        let _ = shard;
    }

    /// A memo probe missed in `shard` (the state was not yet refuted).
    fn on_memo_miss(&self, shard: usize) {
        let _ = shard;
    }

    /// A refuted state was inserted into `shard`.
    fn on_memo_insert(&self, shard: usize) {
        let _ = shard;
    }

    /// The parallel frontier search enumerated `branches` legal first
    /// elements and split them across `workers` workers.
    fn on_root_frontier(&self, branches: usize, workers: usize) {
        let _ = (branches, workers);
    }

    /// A worker stole a subtree task from a peer's deque (work-stealing
    /// path only; injector hand-offs of root branches are not steals).
    fn on_steal(&self) {}

    /// The per-object decomposition started checking `object`.
    fn on_object_start(&self, object: ObjectId) {
        let _ = object;
    }

    /// The per-object decomposition finished `object` after `wall` with
    /// the given outcome.
    fn on_object_done(&self, object: ObjectId, wall: Duration, outcome: ObjectOutcome) {
        let _ = (object, wall, outcome);
    }

    /// The search latched an interrupt (deadline or cancellation). The
    /// parallel checker may report this once per worker.
    fn on_interrupt(&self, reason: InterruptReason) {
        let _ = reason;
    }

    /// The node budget (`max_nodes`) was spent. The parallel checker may
    /// report this once per worker.
    fn on_budget_exhausted(&self, max_nodes: u64) {
        let _ = max_nodes;
    }
}

/// One object's row in a [`SearchReport`] under per-object
/// decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectReport {
    /// The object the subsearch covered.
    pub object: ObjectId,
    /// Wall-clock the subsearch took.
    pub wall_ms: f64,
    /// How the subsearch ended.
    pub outcome: ObjectOutcome,
}

/// A lock-free [`StatsSink`] aggregating every event into atomic
/// counters, from which a [`SearchReport`] can be produced.
///
/// Cheap enough to leave attached in production: every callback is one
/// or two relaxed atomic increments (object timings take a short mutex,
/// but fire once per object, not per node).
#[derive(Debug)]
pub struct CountingSink {
    nodes: AtomicU64,
    frontier_max: AtomicU64,
    frontier_sum: AtomicU64,
    frontier_samples: AtomicU64,
    elements: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_inserts: AtomicU64,
    shard_hits: [AtomicU64; MEMO_SHARD_BUCKETS],
    shard_inserts: [AtomicU64; MEMO_SHARD_BUCKETS],
    root_branches: AtomicU64,
    root_workers: AtomicU64,
    steals: AtomicU64,
    deadline_interrupts: AtomicU64,
    cancel_interrupts: AtomicU64,
    budget_exhaustions: AtomicU64,
    objects: Mutex<Vec<ObjectReport>>,
}

impl Default for CountingSink {
    fn default() -> Self {
        CountingSink {
            nodes: AtomicU64::new(0),
            frontier_max: AtomicU64::new(0),
            frontier_sum: AtomicU64::new(0),
            frontier_samples: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            memo_inserts: AtomicU64::new(0),
            shard_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            shard_inserts: std::array::from_fn(|_| AtomicU64::new(0)),
            root_branches: AtomicU64::new(0),
            root_workers: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            deadline_interrupts: AtomicU64::new(0),
            cancel_interrupts: AtomicU64::new(0),
            budget_exhaustions: AtomicU64::new(0),
            objects: Mutex::new(Vec::new()),
        }
    }
}

impl CountingSink {
    /// Creates a sink with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nodes expanded so far.
    pub fn nodes(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Candidate elements tried so far.
    pub fn elements_tried(&self) -> u64 {
        self.elements.load(Ordering::Relaxed)
    }

    /// Memo probes that hit a refuted state.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Memo probes that missed.
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses.load(Ordering::Relaxed)
    }

    /// Refuted states inserted into the memo table.
    pub fn memo_inserts(&self) -> u64 {
        self.memo_inserts.load(Ordering::Relaxed)
    }

    /// Widest frontier of minimal operations seen at any node.
    pub fn frontier_max(&self) -> u64 {
        self.frontier_max.load(Ordering::Relaxed)
    }

    /// Mean frontier width over all expanded nodes (0.0 before the
    /// first node).
    pub fn frontier_mean(&self) -> f64 {
        let samples = self.frontier_samples.load(Ordering::Relaxed);
        if samples == 0 {
            0.0
        } else {
            self.frontier_sum.load(Ordering::Relaxed) as f64 / samples as f64
        }
    }

    /// Root branches enumerated by the parallel frontier search (0 when
    /// that path did not run).
    pub fn root_branches(&self) -> u64 {
        self.root_branches.load(Ordering::Relaxed)
    }

    /// Subtree tasks stolen from peer deques (0 when work-stealing did
    /// not run or never fired).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Per-object subsearch rows recorded so far (decomposition path).
    pub fn object_reports(&self) -> Vec<ObjectReport> {
        self.objects.lock().clone()
    }

    fn bucket(shard: usize) -> usize {
        shard % MEMO_SHARD_BUCKETS
    }

    /// Snapshots everything into a [`SearchReport`].
    ///
    /// `outcome` supplies the authoritative verdict and [`crate::check::CheckStats`]
    /// (node/element/memo-hit totals are taken from there, so the report
    /// agrees with the checker even if the sink was shared across runs);
    /// `options` supplies the budget and thread count; `wall` is the
    /// caller-measured wall-clock of the run. Generic over the witness
    /// type, so reports work for CAL, seqlin and interval outcomes alike.
    pub fn report<W>(
        &self,
        outcome: &CheckOutcome<W>,
        options: &CheckOptions,
        wall: Duration,
    ) -> SearchReport {
        let (verdict, interrupted) = verdict_strings(&outcome.verdict);
        let shard_hits: Vec<u64> =
            self.shard_hits.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let active_shards =
            self.shard_inserts.iter().filter(|c| c.load(Ordering::Relaxed) > 0).count();
        SearchReport {
            verdict,
            wall_ms: wall.as_secs_f64() * 1e3,
            threads: options.threads,
            max_nodes: options.max_nodes,
            nodes: outcome.stats.nodes,
            elements_tried: outcome.stats.elements_tried,
            memo_hits: outcome.stats.memo_hits,
            memo_misses: self.memo_misses(),
            memo_inserts: self.memo_inserts(),
            memo_shard_hits: shard_hits,
            active_shards,
            frontier_max: self.frontier_max(),
            frontier_mean: self.frontier_mean(),
            root_branches: self.root_branches(),
            root_workers: self.root_workers.load(Ordering::Relaxed),
            steals: outcome.stats.steals,
            interrupted,
            exhausted: matches!(outcome.verdict, Verdict::ResourcesExhausted),
            objects: self.object_reports(),
        }
    }
}

/// The JSON-facing verdict name plus the interrupt cause, if any.
fn verdict_strings<W>(verdict: &Verdict<W>) -> (String, Option<String>) {
    match verdict {
        Verdict::Cal(_) => ("cal".to_string(), None),
        Verdict::NotCal => ("not-cal".to_string(), None),
        Verdict::ResourcesExhausted => ("resources-exhausted".to_string(), None),
        Verdict::Interrupted { reason } => {
            let cause = match reason {
                InterruptReason::DeadlineExceeded => "deadline-exceeded",
                InterruptReason::Cancelled => "cancelled",
            };
            ("interrupted".to_string(), Some(cause.to_string()))
        }
    }
}

impl StatsSink for CountingSink {
    fn on_node(&self) {
        self.nodes.fetch_add(1, Ordering::Relaxed);
    }

    fn on_frontier(&self, width: usize) {
        let w = width as u64;
        self.frontier_max.fetch_max(w, Ordering::Relaxed);
        self.frontier_sum.fetch_add(w, Ordering::Relaxed);
        self.frontier_samples.fetch_add(1, Ordering::Relaxed);
    }

    fn on_element_tried(&self) {
        self.elements.fetch_add(1, Ordering::Relaxed);
    }

    fn on_memo_hit(&self, shard: usize) {
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
        self.shard_hits[Self::bucket(shard)].fetch_add(1, Ordering::Relaxed);
    }

    fn on_memo_miss(&self, _shard: usize) {
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
    }

    fn on_memo_insert(&self, shard: usize) {
        self.memo_inserts.fetch_add(1, Ordering::Relaxed);
        self.shard_inserts[Self::bucket(shard)].fetch_add(1, Ordering::Relaxed);
    }

    fn on_root_frontier(&self, branches: usize, workers: usize) {
        self.root_branches.store(branches as u64, Ordering::Relaxed);
        self.root_workers.store(workers as u64, Ordering::Relaxed);
    }

    fn on_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    fn on_object_done(&self, object: ObjectId, wall: Duration, outcome: ObjectOutcome) {
        self.objects.lock().push(ObjectReport {
            object,
            wall_ms: wall.as_secs_f64() * 1e3,
            outcome,
        });
    }

    fn on_interrupt(&self, reason: InterruptReason) {
        match reason {
            InterruptReason::DeadlineExceeded => {
                self.deadline_interrupts.fetch_add(1, Ordering::Relaxed)
            }
            InterruptReason::Cancelled => self.cancel_interrupts.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn on_budget_exhausted(&self, _max_nodes: u64) {
        self.budget_exhaustions.fetch_add(1, Ordering::Relaxed);
    }
}

/// A structured end-of-run summary of one CAL membership check.
///
/// Produced by [`CountingSink::report`]; serialized with
/// [`SearchReport::to_json`] (compact, single line, no external
/// dependencies) and rendered for humans with [`SearchReport::explain`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// `"cal"`, `"not-cal"`, `"resources-exhausted"` or `"interrupted"`.
    pub verdict: String,
    /// Wall-clock of the whole check, in milliseconds.
    pub wall_ms: f64,
    /// Worker threads the check was configured with.
    pub threads: usize,
    /// The node budget ([`CheckOptions::max_nodes`]).
    pub max_nodes: u64,
    /// Search nodes expanded (from the authoritative
    /// [`crate::check::CheckStats`]).
    pub nodes: u64,
    /// Candidate CA-elements tried.
    pub elements_tried: u64,
    /// Memo probes that pruned a subtree.
    pub memo_hits: u64,
    /// Memo probes that missed.
    pub memo_misses: u64,
    /// Refuted states inserted into the memo table.
    pub memo_inserts: u64,
    /// Memo hits folded into [`MEMO_SHARD_BUCKETS`] shard buckets — an
    /// imbalance here points at memo contention on hot stripes.
    pub memo_shard_hits: Vec<u64>,
    /// Shard buckets that received at least one insert.
    pub active_shards: usize,
    /// Widest frontier of minimal operations at any node.
    pub frontier_max: u64,
    /// Mean frontier width across all nodes.
    pub frontier_mean: f64,
    /// Legal first elements enumerated by the parallel frontier search
    /// (0 if that path did not run).
    pub root_branches: u64,
    /// Workers the root frontier was split across (0 if not run).
    pub root_workers: u64,
    /// Subtree tasks stolen from peer deques by idle workers (from the
    /// authoritative [`crate::check::CheckStats`]; 0 without stealing).
    pub steals: u64,
    /// `Some("deadline-exceeded" | "cancelled")` when the search was
    /// interrupted.
    pub interrupted: Option<String>,
    /// Whether the node budget was exhausted.
    pub exhausted: bool,
    /// Per-object rows when the check decomposed (empty otherwise).
    pub objects: Vec<ObjectReport>,
}

impl SearchReport {
    /// Serializes the report as compact single-line JSON.
    ///
    /// Shard hits are emitted sparsely (`{"bucket": hits, ...}`, nonzero
    /// buckets only) to keep reports small.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        push_field(&mut out, "verdict", &format!("\"{}\"", self.verdict));
        match &self.interrupted {
            Some(cause) => push_field(&mut out, "interrupted", &format!("\"{cause}\"")),
            None => push_field(&mut out, "interrupted", "null"),
        }
        push_field(&mut out, "exhausted", if self.exhausted { "true" } else { "false" });
        push_field(&mut out, "wall_ms", &format!("{:.3}", self.wall_ms));
        push_field(&mut out, "threads", &self.threads.to_string());
        push_field(&mut out, "max_nodes", &self.max_nodes.to_string());
        push_field(&mut out, "nodes", &self.nodes.to_string());
        push_field(&mut out, "elements_tried", &self.elements_tried.to_string());
        push_field(&mut out, "memo_hits", &self.memo_hits.to_string());
        push_field(&mut out, "memo_misses", &self.memo_misses.to_string());
        push_field(&mut out, "memo_inserts", &self.memo_inserts.to_string());
        let shards: Vec<String> = self
            .memo_shard_hits
            .iter()
            .enumerate()
            .filter(|(_, &h)| h > 0)
            .map(|(i, h)| format!("\"{i}\": {h}"))
            .collect();
        push_field(&mut out, "memo_shard_hits", &format!("{{{}}}", shards.join(", ")));
        push_field(&mut out, "active_shards", &self.active_shards.to_string());
        push_field(&mut out, "frontier_max", &self.frontier_max.to_string());
        push_field(&mut out, "frontier_mean", &format!("{:.3}", self.frontier_mean));
        push_field(&mut out, "root_branches", &self.root_branches.to_string());
        push_field(&mut out, "root_workers", &self.root_workers.to_string());
        push_field(&mut out, "steals", &self.steals.to_string());
        let objects: Vec<String> = self
            .objects
            .iter()
            .map(|o| {
                format!(
                    "{{\"object\": {}, \"wall_ms\": {:.3}, \"outcome\": \"{}\"}}",
                    o.object.0, o.wall_ms, o.outcome
                )
            })
            .collect();
        push_field(&mut out, "objects", &format!("[{}]", objects.join(", ")));
        // Drop the trailing ", ".
        out.truncate(out.len() - 2);
        out.push('}');
        out
    }

    /// One compact human line: verdict, wall-clock and headline counters.
    pub fn summary(&self) -> String {
        format!(
            "{} in {:.2} ms: {} nodes, {} elements, {} memo hits / {} misses",
            self.verdict,
            self.wall_ms,
            self.nodes,
            self.elements_tried,
            self.memo_hits,
            self.memo_misses
        )
    }

    /// A multi-line human explanation of where the search spent its work
    /// and — when the verdict is undecided — why it stopped.
    pub fn explain(&self) -> String {
        let mut lines = vec![format!("verdict: {} in {:.2} ms", self.verdict, self.wall_ms)];
        let budget_pct = if self.max_nodes == 0 {
            100.0
        } else {
            self.nodes as f64 * 100.0 / self.max_nodes as f64
        };
        lines.push(format!(
            "search:  {} nodes ({:.2}% of the {}-node budget), {} elements tried",
            self.nodes, budget_pct, self.max_nodes, self.elements_tried
        ));
        let probes = self.memo_hits + self.memo_misses;
        if probes > 0 {
            lines.push(format!(
                "memo:    {} hits / {} misses ({:.1}% hit rate), {} inserts over {} active shard bucket(s)",
                self.memo_hits,
                self.memo_misses,
                self.memo_hits as f64 * 100.0 / probes as f64,
                self.memo_inserts,
                self.active_shards
            ));
        }
        if self.frontier_max > 0 {
            lines.push(format!(
                "frontier: max {} concurrent minimal ops, mean {:.1}",
                self.frontier_max, self.frontier_mean
            ));
        }
        if self.root_branches > 0 {
            lines.push(format!(
                "parallel: {} root branches split over {} workers, {} subtree steal(s)",
                self.root_branches, self.root_workers, self.steals
            ));
        }
        if !self.objects.is_empty() {
            let slowest = self
                .objects
                .iter()
                .max_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
                .expect("objects is non-empty");
            lines.push(format!(
                "decomposed: {} object(s); slowest o{} ({}, {:.2} ms)",
                self.objects.len(),
                slowest.object.0,
                slowest.outcome,
                slowest.wall_ms
            ));
        }
        if let Some(cause) = &self.interrupted {
            lines.push(format!(
                "cause:   interrupted ({cause}) — raise the deadline or shrink the history"
            ));
        }
        if self.exhausted {
            lines.push(format!(
                "cause:   node budget exhausted at {} nodes — raise max_nodes or shrink the history",
                self.nodes
            ));
        }
        lines.join("\n")
    }
}

impl fmt::Display for SearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Appends one `"key": value, ` JSON field; shared with the streaming
/// report so `cal-serve` and `cal-check` emit the same wire style.
pub(crate) fn push_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(value);
    out.push_str(", ");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckStats;

    fn sample_report(sink: &CountingSink, verdict: Verdict) -> SearchReport {
        let outcome = CheckOutcome {
            verdict,
            stats: CheckStats { nodes: 7, elements_tried: 9, memo_hits: 2, steals: 0 },
        };
        sink.report(&outcome, &CheckOptions::default(), Duration::from_millis(5))
    }

    #[test]
    fn counting_sink_counts_every_event() {
        let sink = CountingSink::new();
        sink.on_node();
        sink.on_node();
        sink.on_frontier(3);
        sink.on_frontier(5);
        sink.on_element_tried();
        sink.on_memo_hit(70); // folds into bucket 70 % 64 = 6
        sink.on_memo_miss(1);
        sink.on_memo_insert(1);
        sink.on_root_frontier(12, 4);
        sink.on_interrupt(InterruptReason::DeadlineExceeded);
        sink.on_budget_exhausted(100);
        sink.on_object_done(ObjectId(3), Duration::from_millis(2), ObjectOutcome::NotCal);

        assert_eq!(sink.nodes(), 2);
        assert_eq!(sink.frontier_max(), 5);
        assert!((sink.frontier_mean() - 4.0).abs() < 1e-9);
        assert_eq!(sink.elements_tried(), 1);
        assert_eq!(sink.memo_hits(), 1);
        assert_eq!(sink.memo_misses(), 1);
        assert_eq!(sink.memo_inserts(), 1);
        assert_eq!(sink.root_branches(), 12);
        let objects = sink.object_reports();
        assert_eq!(objects.len(), 1);
        assert_eq!(objects[0].object, ObjectId(3));
        assert_eq!(objects[0].outcome, ObjectOutcome::NotCal);
    }

    #[test]
    fn report_prefers_authoritative_stats() {
        let sink = CountingSink::new();
        sink.on_node(); // sink saw 1 node; the outcome says 7
        let report = sample_report(&sink, Verdict::NotCal);
        assert_eq!(report.nodes, 7);
        assert_eq!(report.elements_tried, 9);
        assert_eq!(report.memo_hits, 2);
        assert_eq!(report.verdict, "not-cal");
        assert_eq!(report.interrupted, None);
    }

    #[test]
    fn json_is_well_formed_and_sparse() {
        let sink = CountingSink::new();
        sink.on_memo_hit(6);
        sink.on_memo_hit(6);
        let report = sample_report(&sink, Verdict::NotCal);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"nodes\": 7"), "{json}");
        assert!(json.contains("\"memo_shard_hits\": {\"6\": 2}"), "{json}");
        assert!(json.contains("\"interrupted\": null"), "{json}");
        assert!(!json.contains('\n'), "single line expected: {json}");
    }

    #[test]
    fn interrupted_verdict_is_reported_with_cause() {
        let sink = CountingSink::new();
        let report = sample_report(
            &sink,
            Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded },
        );
        assert_eq!(report.verdict, "interrupted");
        assert_eq!(report.interrupted.as_deref(), Some("deadline-exceeded"));
        assert!(report.explain().contains("deadline-exceeded"), "{}", report.explain());
        assert!(report.to_json().contains("\"interrupted\": \"deadline-exceeded\""));
    }

    #[test]
    fn explain_mentions_decomposition_and_budget() {
        let sink = CountingSink::new();
        sink.on_object_done(ObjectId(0), Duration::from_millis(1), ObjectOutcome::Cal);
        sink.on_object_done(ObjectId(1), Duration::from_millis(9), ObjectOutcome::Exhausted);
        let report = sample_report(&sink, Verdict::ResourcesExhausted);
        let text = report.explain();
        assert!(text.contains("slowest o1"), "{text}");
        assert!(text.contains("budget exhausted"), "{text}");
    }

    #[test]
    fn display_is_the_summary() {
        let sink = CountingSink::new();
        let report = sample_report(&sink, Verdict::NotCal);
        assert_eq!(report.to_string(), report.summary());
    }
}
