//! The `F_o` view-function machinery for compositional verification (§4–5).
//!
//! Each object `o` that encapsulates subobjects provides a function `F_o`
//! from CA-elements of its *immediate* subobjects to CA-traces containing
//! only operations of `o`. Its total extension `F̂_o` maps elements where
//! `F_o` is undefined to themselves; `F̂_o` is idempotent and commutes with
//! `F̂_{o'}` for disjoint objects. The recursive composition
//! `𝓕_o = F̂_o ∘ (𝓕_{o1} ∘ … ∘ 𝓕_{on})` applies the subobjects' view
//! functions first; `T_o = 𝓕_o(𝒯)` is `o`'s view of the global trace.
//!
//! This is what makes client proofs modular: the elimination stack's
//! correctness is checked on `F_ES(T)` without peeking into the elimination
//! array's implementation.

use crate::trace::{CaElement, CaTrace};

/// A view function `F_o`: maps CA-elements of immediate subobjects to
/// CA-traces of the containing object. Returning `None` means `F_o` is
/// undefined on the element (the total extension leaves it unchanged).
pub trait TraceMap {
    /// Maps one subobject CA-element, or returns `None` if this element is
    /// not translated by this view function.
    fn map_element(&self, element: &CaElement) -> Option<CaTrace>;

    /// The total extension `F̂_o`: defined elements are translated, all
    /// others pass through unchanged.
    fn total(&self, element: &CaElement) -> CaTrace {
        match self.map_element(element) {
            Some(t) => t,
            None => CaTrace::from_elements(vec![element.clone()]),
        }
    }

    /// Applies `F̂_o` elementwise to a trace, concatenating the images.
    fn apply(&self, trace: &CaTrace) -> CaTrace {
        let mut out = CaTrace::new();
        for e in trace.elements() {
            out = out.concat(self.total(e));
        }
        out
    }
}

/// A view function that drops every element it is defined on. Useful for
/// hiding internal bookkeeping operations from clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropAll;

impl TraceMap for DropAll {
    fn map_element(&self, _element: &CaElement) -> Option<CaTrace> {
        Some(CaTrace::new())
    }
}

/// The identity view function: `F_o` undefined everywhere, so `F̂_o` is the
/// identity. This is the paper's choice for objects with no subobjects
/// (e.g. the exchanger takes `F_E` completely undefined so `T_E = 𝒯|E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity;

impl TraceMap for Identity {
    fn map_element(&self, _element: &CaElement) -> Option<CaTrace> {
        None
    }
}

/// Function composition of two view functions: applies `inner` first (the
/// subobjects' `𝓕`), then `outer` (the containing object's `F̂_o`). This is
/// the paper's `𝓕_o = F̂_o ∘ (𝓕_{o1} ∘ … ∘ 𝓕_{on})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Composed<Outer, Inner> {
    outer: Outer,
    inner: Inner,
}

impl<Outer, Inner> Composed<Outer, Inner> {
    /// Composes `outer ∘ inner`.
    pub fn new(outer: Outer, inner: Inner) -> Self {
        Composed { outer, inner }
    }
}

impl<Outer: TraceMap, Inner: TraceMap> TraceMap for Composed<Outer, Inner> {
    fn map_element(&self, element: &CaElement) -> Option<CaTrace> {
        // F̂_outer ∘ F̂_inner on a single element; report `Some` only when
        // either stage actually translated something, so that `total`
        // remains the total extension of the composition.
        match self.inner.map_element(element) {
            Some(mid) => Some(self.outer.apply(&mid)),
            None => self.outer.map_element(element),
        }
    }
}

/// A closure-backed view function, convenient for defining `F_o` inline.
///
/// # Examples
///
/// ```
/// use cal_core::compose::{FnTraceMap, TraceMap};
/// use cal_core::{CaElement, CaTrace, Method, ObjectId, Operation, ThreadId, Value};
/// let inner = ObjectId(1);
/// let outer = ObjectId(0);
/// // Rename elements of `inner` to `outer`, pass others through.
/// let f = FnTraceMap::new(move |e: &CaElement| {
///     if e.object() != inner {
///         return None;
///     }
///     let renamed: Vec<Operation> = e
///         .ops()
///         .iter()
///         .map(|op| Operation::new(op.thread, outer, op.method, op.arg, op.ret))
///         .collect();
///     Some(CaTrace::from_elements(vec![CaElement::new(outer, renamed).unwrap()]))
/// });
/// let op = Operation::new(ThreadId(0), inner, Method("m"), Value::Unit, Value::Unit);
/// let t = CaTrace::from_elements(vec![CaElement::singleton(op)]);
/// let mapped = f.apply(&t);
/// assert_eq!(mapped.elements()[0].object(), outer);
/// ```
pub struct FnTraceMap<F> {
    f: F,
}

impl<F> FnTraceMap<F>
where
    F: Fn(&CaElement) -> Option<CaTrace>,
{
    /// Wraps a closure as a view function.
    pub fn new(f: F) -> Self {
        FnTraceMap { f }
    }
}

impl<F> TraceMap for FnTraceMap<F>
where
    F: Fn(&CaElement) -> Option<CaTrace>,
{
    fn map_element(&self, element: &CaElement) -> Option<CaTrace> {
        (self.f)(element)
    }
}

impl<F> std::fmt::Debug for FnTraceMap<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnTraceMap(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::op::Operation;

    const A: ObjectId = ObjectId(1);
    const B: ObjectId = ObjectId(2);
    const TOP: ObjectId = ObjectId(0);

    fn op(o: ObjectId, t: u32) -> Operation {
        Operation::new(ThreadId(t), o, Method("m"), Value::Unit, Value::Unit)
    }

    fn rename(from: ObjectId, to: ObjectId) -> FnTraceMap<impl Fn(&CaElement) -> Option<CaTrace>> {
        FnTraceMap::new(move |e: &CaElement| {
            if e.object() != from {
                return None;
            }
            let renamed: Vec<Operation> = e
                .ops()
                .iter()
                .map(|p| Operation::new(p.thread, to, p.method, p.arg, p.ret))
                .collect();
            Some(CaTrace::from_elements(vec![CaElement::new(to, renamed).unwrap()]))
        })
    }

    #[test]
    fn identity_leaves_trace_unchanged() {
        let t = CaTrace::from_elements(vec![CaElement::singleton(op(A, 1))]);
        assert_eq!(Identity.apply(&t), t);
    }

    #[test]
    fn drop_all_empties_trace() {
        let t = CaTrace::from_elements(vec![CaElement::singleton(op(A, 1))]);
        assert!(DropAll.apply(&t).is_empty());
    }

    #[test]
    fn total_extension_passes_undefined_elements() {
        let f = rename(A, TOP);
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(A, 1)),
            CaElement::singleton(op(B, 2)),
        ]);
        let mapped = f.apply(&t);
        assert_eq!(mapped.elements()[0].object(), TOP);
        assert_eq!(mapped.elements()[1].object(), B);
    }

    #[test]
    fn total_extension_is_idempotent() {
        let f = rename(A, TOP);
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(A, 1)),
            CaElement::singleton(op(B, 2)),
        ]);
        let once = f.apply(&t);
        let twice = f.apply(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn disjoint_maps_commute() {
        let f = rename(A, TOP);
        let g = rename(B, TOP);
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(A, 1)),
            CaElement::singleton(op(B, 2)),
        ]);
        let fg = f.apply(&g.apply(&t));
        let gf = g.apply(&f.apply(&t));
        assert_eq!(fg, gf);
    }

    #[test]
    fn composition_applies_inner_then_outer() {
        // inner: A → B, outer: B → TOP; composed maps A all the way to TOP.
        let composed = Composed::new(rename(B, TOP), rename(A, B));
        let t = CaTrace::from_elements(vec![CaElement::singleton(op(A, 1))]);
        let mapped = composed.apply(&t);
        assert_eq!(mapped.elements()[0].object(), TOP);
    }

    #[test]
    fn composition_translates_outer_only_elements_too() {
        let composed = Composed::new(rename(B, TOP), rename(A, B));
        let t = CaTrace::from_elements(vec![CaElement::singleton(op(B, 1))]);
        let mapped = composed.apply(&t);
        assert_eq!(mapped.elements()[0].object(), TOP);
    }

    #[test]
    fn map_can_expand_one_element_to_many() {
        // Splits a pair element into two singletons on TOP — the shape of
        // the paper's F_ES (push linearized before pop).
        let split = FnTraceMap::new(move |e: &CaElement| {
            if e.object() != A || e.len() != 2 {
                return None;
            }
            Some(CaTrace::from_elements(
                e.ops()
                    .iter()
                    .map(|p| {
                        CaElement::singleton(Operation::new(
                            p.thread, TOP, p.method, p.arg, p.ret,
                        ))
                    })
                    .collect(),
            ))
        });
        let pair = CaElement::pair(op(A, 1), op(A, 2)).unwrap();
        let t = CaTrace::from_elements(vec![pair]);
        let mapped = split.apply(&t);
        assert_eq!(mapped.len(), 2);
        assert!(mapped.elements().iter().all(|e| e.object() == TOP && e.len() == 1));
    }

    #[test]
    fn map_can_drop_elements() {
        let drop_a = FnTraceMap::new(move |e: &CaElement| {
            (e.object() == A).then(CaTrace::new)
        });
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(A, 1)),
            CaElement::singleton(op(B, 2)),
        ]);
        let mapped = drop_a.apply(&t);
        assert_eq!(mapped.len(), 1);
        assert_eq!(mapped.elements()[0].object(), B);
    }
}
