//! Histories: finite sequences of invocations and responses (Defs. 2–3).
//!
//! A [`History`] records the interaction between a client program and an
//! object system at the interface level. This module provides the paper's
//! notions of well-formedness, sequentiality, completeness, projections
//! `H|t` / `H|o`, the real-time order `≺H` and completions `complete(H)`.

use std::error::Error;
use std::fmt;

use crate::action::{Action, ActionKind};
use crate::ids::{Method, ObjectId, ThreadId, Value};
use crate::op::Operation;

/// Why a sequence of actions fails to be a well-formed history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// A thread produced a response without a pending invocation.
    ResponseWithoutInvocation {
        /// Index of the offending action.
        index: usize,
        /// Thread of the offending action.
        thread: ThreadId,
    },
    /// A thread invoked a method while another of its invocations was
    /// pending (`H|t` not sequential).
    NestedInvocation {
        /// Index of the offending action.
        index: usize,
        /// Thread of the offending action.
        thread: ThreadId,
    },
    /// A response does not match the object/method of the thread's pending
    /// invocation.
    MismatchedResponse {
        /// Index of the offending response.
        index: usize,
        /// Thread of the offending response.
        thread: ThreadId,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::ResponseWithoutInvocation { index, thread } => {
                write!(f, "response at index {index} by {thread} has no pending invocation")
            }
            HistoryError::NestedInvocation { index, thread } => {
                write!(f, "invocation at index {index} by {thread} while another is pending")
            }
            HistoryError::MismatchedResponse { index, thread } => {
                write!(f, "response at index {index} by {thread} does not match its invocation")
            }
        }
    }
}

impl Error for HistoryError {}

/// The span of one operation inside a history: the index of its invocation,
/// the index of its matching response (if any), and the completed
/// [`Operation`] when the response is present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Index of the invocation action in the history.
    pub inv: usize,
    /// Index of the matching response action, or `None` if pending.
    pub resp: Option<usize>,
    /// Thread performing the operation.
    pub thread: ThreadId,
    /// Object operated on.
    pub object: ObjectId,
    /// Method invoked.
    pub method: Method,
    /// Invocation argument.
    pub arg: Value,
    /// Return value, if the operation completed.
    pub ret: Option<Value>,
}

impl Span {
    /// Returns `true` if the operation has a matching response.
    pub fn is_complete(&self) -> bool {
        self.resp.is_some()
    }

    /// The completed [`Operation`] (`OP(H, i)` in Def. 4), if any.
    pub fn operation(&self) -> Option<Operation> {
        self.ret.map(|ret| Operation::new(self.thread, self.object, self.method, self.arg, ret))
    }

    /// The completed operation with a substituted return value; used when a
    /// checker decides how to complete a pending invocation.
    pub fn operation_with_ret(&self, ret: Value) -> Operation {
        Operation::new(self.thread, self.object, self.method, self.arg, ret)
    }
}

/// A finite sequence of invocation and response actions (Def. 2).
///
/// # Examples
///
/// ```
/// use cal_core::{Action, History, Method, ObjectId, ThreadId, Value};
/// let e = ObjectId(0);
/// let ex = Method("exchange");
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(1), e, ex, Value::Int(3)),
///     Action::invoke(ThreadId(2), e, ex, Value::Int(4)),
///     Action::response(ThreadId(1), e, ex, Value::Pair(true, 4)),
///     Action::response(ThreadId(2), e, ex, Value::Pair(true, 3)),
/// ]);
/// assert!(h.is_well_formed());
/// assert!(h.is_complete());
/// assert!(!h.is_sequential());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct History {
    actions: Vec<Action>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { actions: Vec::new() }
    }

    /// Creates a history from a sequence of actions.
    pub fn from_actions(actions: Vec<Action>) -> Self {
        History { actions }
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Appends the invocation and response of `op` adjacently, keeping the
    /// history sequential if it was.
    pub fn push_complete(&mut self, op: Operation) {
        self.actions.push(op.invocation());
        self.actions.push(op.response());
    }

    /// The actions of the history, in order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions (`|H|`).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if the history contains no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Checks well-formedness (Def. 2): for every thread `t`, the
    /// projection `H|t` is sequential, and every response matches the
    /// object/method of its thread's pending invocation.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in action order.
    pub fn validate(&self) -> Result<(), HistoryError> {
        // Pending invocation per thread: (object, method).
        let mut pending: Vec<(ThreadId, ObjectId, Method)> = Vec::new();
        for (index, a) in self.actions.iter().enumerate() {
            let t = a.thread();
            let slot = pending.iter().position(|(pt, _, _)| *pt == t);
            match a.kind() {
                ActionKind::Invoke(_) => {
                    if slot.is_some() {
                        return Err(HistoryError::NestedInvocation { index, thread: t });
                    }
                    pending.push((t, a.object(), a.method()));
                }
                ActionKind::Response(_) => match slot {
                    None => {
                        return Err(HistoryError::ResponseWithoutInvocation { index, thread: t })
                    }
                    Some(i) => {
                        let (_, o, m) = pending[i];
                        if o != a.object() || m != a.method() {
                            return Err(HistoryError::MismatchedResponse { index, thread: t });
                        }
                        pending.swap_remove(i);
                    }
                },
            }
        }
        Ok(())
    }

    /// Returns `true` if the history is well-formed (Def. 2).
    pub fn is_well_formed(&self) -> bool {
        self.validate().is_ok()
    }

    /// Returns `true` if the history is sequential (Def. 2): an alternation
    /// of invocations and responses starting with an invocation, each
    /// response immediately preceded by its matching invocation.
    pub fn is_sequential(&self) -> bool {
        if !self.actions.len().is_multiple_of(2) {
            // A sequential history may end with a pending invocation; allow
            // an odd length only when the final action is an invocation.
            if let Some(last) = self.actions.last() {
                if !last.is_invoke() {
                    return false;
                }
            }
        }
        let mut i = 0;
        while i < self.actions.len() {
            let inv = &self.actions[i];
            if !inv.is_invoke() {
                return false;
            }
            if i + 1 == self.actions.len() {
                return true; // trailing pending invocation
            }
            let res = &self.actions[i + 1];
            if !res.is_response()
                || res.thread() != inv.thread()
                || res.object() != inv.object()
                || res.method() != inv.method()
            {
                return false;
            }
            i += 2;
        }
        true
    }

    /// Returns `true` if the history is complete (Def. 2): well-formed and
    /// every invocation has a matching response.
    pub fn is_complete(&self) -> bool {
        self.is_well_formed() && self.spans().iter().all(Span::is_complete)
    }

    /// The projection `H|t`: the subsequence of actions of thread `t`.
    pub fn project_thread(&self, t: ThreadId) -> History {
        History {
            actions: self.actions.iter().copied().filter(|a| a.thread() == t).collect(),
        }
    }

    /// The projection `H|o`: the subsequence of actions on object `o`.
    pub fn project_object(&self, o: ObjectId) -> History {
        History {
            actions: self.actions.iter().copied().filter(|a| a.object() == o).collect(),
        }
    }

    /// The threads that appear in the history, deduplicated, in first-use
    /// order.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut ts = Vec::new();
        for a in &self.actions {
            if !ts.contains(&a.thread()) {
                ts.push(a.thread());
            }
        }
        ts
    }

    /// The objects that appear in the history, deduplicated, in first-use
    /// order.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut os = Vec::new();
        for a in &self.actions {
            if !os.contains(&a.object()) {
                os.push(a.object());
            }
        }
        os
    }

    /// Matches invocations with their responses, producing one [`Span`] per
    /// operation, in invocation order.
    ///
    /// # Panics
    ///
    /// Panics if the history is not well-formed; call [`History::validate`]
    /// first when the input is untrusted.
    pub fn spans(&self) -> Vec<Span> {
        self.try_spans().expect("history must be well-formed")
    }

    /// Fallible version of [`History::spans`].
    ///
    /// # Errors
    ///
    /// Returns the well-formedness violation, if any.
    pub fn try_spans(&self) -> Result<Vec<Span>, HistoryError> {
        self.validate()?;
        let mut spans: Vec<Span> = Vec::new();
        // Pending span index per thread.
        let mut pending: Vec<(ThreadId, usize)> = Vec::new();
        for (index, a) in self.actions.iter().enumerate() {
            match a.kind() {
                ActionKind::Invoke(arg) => {
                    pending.push((a.thread(), spans.len()));
                    spans.push(Span {
                        inv: index,
                        resp: None,
                        thread: a.thread(),
                        object: a.object(),
                        method: a.method(),
                        arg,
                        ret: None,
                    });
                }
                ActionKind::Response(ret) => {
                    let i = pending
                        .iter()
                        .position(|(t, _)| *t == a.thread())
                        .expect("validated above");
                    let (_, si) = pending.swap_remove(i);
                    spans[si].resp = Some(index);
                    spans[si].ret = Some(ret);
                }
            }
        }
        Ok(spans)
    }

    /// The completed operations of the history, in invocation order.
    /// Pending invocations are skipped.
    pub fn operations(&self) -> Vec<Operation> {
        self.spans().iter().filter_map(Span::operation).collect()
    }

    /// The real-time order `≺H` (Def. 3) between two spans: `a ≺H b` iff
    /// `a`'s response precedes `b`'s invocation in the history.
    pub fn spans_precede(a: &Span, b: &Span) -> bool {
        match a.resp {
            Some(r) => r < b.inv,
            None => false,
        }
    }

    /// Returns `true` if two spans overlap (neither `≺H`-precedes the
    /// other).
    pub fn spans_concurrent(a: &Span, b: &Span) -> bool {
        !History::spans_precede(a, b) && !History::spans_precede(b, a)
    }

    /// Enumerates all completions of this history (Def. 2): complete
    /// histories obtained by appending responses for some pending
    /// invocations (with return values drawn from `candidate_rets`) and
    /// removing the remaining pending invocations.
    ///
    /// `candidate_rets` receives the thread/object/method/arg of each
    /// pending invocation and returns the return values to try.
    ///
    /// # Panics
    ///
    /// Panics if the history is not well-formed.
    pub fn completions<F>(&self, mut candidate_rets: F) -> Vec<History>
    where
        F: FnMut(&Span) -> Vec<Value>,
    {
        let spans = self.spans();
        let pending: Vec<&Span> = spans.iter().filter(|s| !s.is_complete()).collect();
        // For each pending invocation: either drop it or append a response
        // with one of the candidate return values.
        let mut results = Vec::new();
        let options: Vec<Vec<Option<Value>>> = pending
            .iter()
            .map(|s| {
                let mut opts: Vec<Option<Value>> = vec![None];
                opts.extend(candidate_rets(s).into_iter().map(Some));
                opts
            })
            .collect();
        let mut choice = vec![0usize; pending.len()];
        loop {
            // Materialize this choice: drop pending invocations with choice
            // 0, append a response for the others.
            let dropped: Vec<usize> = pending
                .iter()
                .zip(&choice)
                .filter(|(_, &c)| c == 0)
                .map(|(s, _)| s.inv)
                .collect();
            let mut actions: Vec<Action> = self
                .actions
                .iter()
                .enumerate()
                .filter(|(i, _)| !dropped.contains(i))
                .map(|(_, a)| *a)
                .collect();
            for (k, (s, &c)) in pending.iter().zip(&choice).enumerate() {
                if c > 0 {
                    let ret = options[k][c].expect("non-zero choices carry values");
                    actions.push(Action::response(s.thread, s.object, s.method, ret));
                }
            }
            results.push(History::from_actions(actions));
            // Advance the mixed-radix counter; full wrap means done.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    return results;
                }
                choice[i] += 1;
                if choice[i] < options[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }
}

impl FromIterator<Action> for History {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        History { actions: iter.into_iter().collect() }
    }
}

impl Extend<Action> for History {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// An order relation over the spans of one history — the *partial history*
/// abstraction the checkers search under.
///
/// Every checker consults the ordering of a history only through this
/// interface: which spans must precede which ([`precedes`]), which pairs
/// may sit in one CA-element ([`concurrent`]), and the pred/succ constraint
/// sets that drive minimal-operation enumeration and symmetry reduction.
/// The classical real-time order `≺H` (Def. 3) is the total-order instance
/// ([`HbRelation::real_time`]); weak-memory-plausible happens-before
/// orders — session order plus explicit `hb` edges — are the genuinely
/// partial instances ([`HbRelation::causal`]).
///
/// [`precedes`]: PartialHistory::precedes
/// [`concurrent`]: PartialHistory::concurrent
pub trait PartialHistory {
    /// Number of spans the relation is defined over.
    fn len(&self) -> usize;

    /// Whether the relation is empty (no spans).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` iff span `i` happens-before span `j`. Irreflexive and
    /// transitive by construction.
    fn precedes(&self, i: usize, j: usize) -> bool;

    /// `true` iff `i` and `j` are distinct and unordered — the pairs a
    /// CA-element may contain.
    fn concurrent(&self, i: usize, j: usize) -> bool {
        i != j && !self.precedes(i, j) && !self.precedes(j, i)
    }

    /// The spans that happen-before span `i`, ascending.
    fn preds(&self, i: usize) -> &[usize];

    /// The spans that span `i` happens-before, ascending.
    fn succs(&self, i: usize) -> &[usize];
}

/// A malformed happens-before declaration: edges that point outside the
/// history, at an operation itself, or that (together with session order)
/// form a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbError {
    /// An edge endpoint is not a valid operation index.
    EdgeOutOfRange {
        /// Edge source (operation index).
        from: usize,
        /// Edge target (operation index).
        to: usize,
        /// Number of operations in the history.
        len: usize,
    },
    /// An edge from an operation to itself.
    SelfEdge {
        /// The operation index.
        op: usize,
    },
    /// Session order plus the declared edges admit no linear extension.
    Cycle {
        /// An operation on the cycle.
        op: usize,
    },
}

impl fmt::Display for HbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbError::EdgeOutOfRange { from, to, len } => write!(
                f,
                "hb edge {from} -> {to} points outside the history ({len} operations)"
            ),
            HbError::SelfEdge { op } => write!(f, "hb edge from operation {op} to itself"),
            HbError::Cycle { op } => write!(
                f,
                "happens-before cycle through operation {op} (session order plus declared edges)"
            ),
        }
    }
}

impl Error for HbError {}

/// A concrete happens-before relation over the spans of one history: the
/// workhorse [`PartialHistory`] instance every checker threads through its
/// search domain.
///
/// Internally the relation is transitively closed up front: `before[j]`
/// is the full set of spans that happen-before `j`, so [`precedes`] is one
/// bitset probe and the pred/succ lists the checkers iterate are
/// precomputed.
///
/// [`precedes`]: PartialHistory::precedes
///
/// # Examples
///
/// ```
/// use cal_core::history::{HbRelation, PartialHistory};
/// use cal_core::{Action, History, Method, ObjectId, ThreadId, Value};
/// let o = ObjectId(0);
/// let m = Method("op");
/// // t1's op completes before t2's begins: real-time orders them, but a
/// // causal order with no cross-thread edges leaves them concurrent.
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(1), o, m, Value::Unit),
///     Action::response(ThreadId(1), o, m, Value::Unit),
///     Action::invoke(ThreadId(2), o, m, Value::Unit),
///     Action::response(ThreadId(2), o, m, Value::Unit),
/// ]);
/// let spans = h.spans();
/// assert!(HbRelation::real_time(&spans).precedes(0, 1));
/// assert!(HbRelation::causal(&spans, &[]).unwrap().concurrent(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct HbRelation {
    /// `before[j]` = the set of spans `i` with `i ≺hb j` (closed).
    before: Vec<crate::bitset::BitSet>,
    /// Ascending pred lists, derived from `before`.
    preds: Vec<Vec<usize>>,
    /// Ascending succ lists, derived from `before`.
    succs: Vec<Vec<usize>>,
    /// Whether this is exactly the real-time order `≺H` of the spans it
    /// was built from (lets consumers keep real-time-only fast paths such
    /// as per-object decomposition).
    real_time: bool,
}

impl HbRelation {
    /// The real-time order `≺H` (Def. 3) of `spans`: the total-order
    /// instance of [`PartialHistory`]. `a ≺H b` iff `a`'s response
    /// precedes `b`'s invocation.
    pub fn real_time(spans: &[Span]) -> Self {
        let n = spans.len();
        let mut before = vec![crate::bitset::BitSet::new(n.max(1)); n];
        for (j, b) in spans.iter().enumerate() {
            for (i, a) in spans.iter().enumerate() {
                if i != j && History::spans_precede(a, b) {
                    before[j].insert(i);
                }
            }
        }
        Self::finish(before, true)
    }

    /// A causal happens-before order: per-thread *session order* (each
    /// thread's spans in invocation order) unioned with the declared
    /// `edges` (pairs of span indices, source happens-before target),
    /// transitively closed.
    ///
    /// This is the weak-memory reading of a trace: cross-thread real-time
    /// ordering is *not* assumed — only program order and whatever
    /// synchronization the trace explicitly declares.
    ///
    /// # Errors
    ///
    /// Returns [`HbError`] when an edge points outside the history, at an
    /// operation itself, or when session order plus the edges contain a
    /// cycle (no linear extension exists).
    pub fn causal(spans: &[Span], edges: &[(usize, usize)]) -> Result<Self, HbError> {
        let n = spans.len();
        for &(from, to) in edges {
            if from >= n || to >= n {
                return Err(HbError::EdgeOutOfRange { from, to, len: n });
            }
            if from == to {
                return Err(HbError::SelfEdge { op: from });
            }
        }
        // Direct adjacency: session chains plus declared edges.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        let add = |adj: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, u: usize, v: usize| {
            if !adj[u].contains(&v) {
                adj[u].push(v);
                indeg[v] += 1;
            }
        };
        let mut last_of_thread: Vec<(ThreadId, usize)> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match last_of_thread.iter_mut().find(|(t, _)| *t == s.thread) {
                Some(entry) => {
                    add(&mut adj, &mut indeg, entry.1, i);
                    entry.1 = i;
                }
                None => last_of_thread.push((s.thread, i)),
            }
        }
        for &(from, to) in edges {
            add(&mut adj, &mut indeg, from, to);
        }
        // Kahn topological order; closure accumulates along it.
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut before = vec![crate::bitset::BitSet::new(n.max(1)); n];
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            // Each node leaves the queue exactly once, so its successor
            // list can be consumed rather than re-indexed.
            let succs = std::mem::take(&mut adj[u]);
            for v in succs {
                // before[v] ∪= before[u] ∪ {u}
                let add_set: Vec<usize> = before[u].iter().collect();
                for i in add_set {
                    before[v].insert(i);
                }
                before[v].insert(u);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen != n {
            let op = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            return Err(HbError::Cycle { op });
        }
        Ok(Self::finish(before, false))
    }

    /// Whether this relation is exactly the real-time order of the spans
    /// it was built from. Consumers use this to keep real-time-only fast
    /// paths (per-object decomposition, `(maxinv, minresp)` witness
    /// merging) without consulting span timestamps themselves.
    pub fn is_real_time(&self) -> bool {
        self.real_time
    }

    /// Restricts the relation to the spans in `keep` (ascending old
    /// indices), renumbering to positions in `keep`. Ordering derived
    /// transitively *through* a removed span is preserved — the closure
    /// was computed before the restriction — which is what completion
    /// (dropping pending invocations, Def. 2) requires.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an index out of range.
    pub fn restrict(&self, keep: &[usize]) -> HbRelation {
        let m = keep.len();
        let mut before = vec![crate::bitset::BitSet::new(m.max(1)); m];
        for (new_j, &old_j) in keep.iter().enumerate() {
            for (new_i, &old_i) in keep.iter().enumerate() {
                if new_i != new_j && self.before[old_j].contains(old_i) {
                    before[new_j].insert(new_i);
                }
            }
        }
        Self::finish(before, self.real_time)
    }

    fn finish(before: Vec<crate::bitset::BitSet>, real_time: bool) -> Self {
        let n = before.len();
        let preds: Vec<Vec<usize>> = before.iter().map(|b| b.iter().collect()).collect();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, ps) in preds.iter().enumerate() {
            for &i in ps {
                succs[i].push(j);
            }
        }
        HbRelation { before, preds, succs, real_time }
    }
}

impl PartialHistory for HbRelation {
    fn len(&self) -> usize {
        self.before.len()
    }

    fn precedes(&self, i: usize, j: usize) -> bool {
        j < self.before.len() && self.before[j].contains(i)
    }

    fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: ObjectId = ObjectId(0);
    const EX: Method = Method("exchange");

    fn inv(t: u32, v: i64) -> Action {
        Action::invoke(ThreadId(t), E, EX, Value::Int(v))
    }

    fn res(t: u32, ok: bool, v: i64) -> Action {
        Action::response(ThreadId(t), E, EX, Value::Pair(ok, v))
    }

    #[test]
    fn empty_history_is_well_formed_sequential_complete() {
        let h = History::new();
        assert!(h.is_well_formed());
        assert!(h.is_sequential());
        assert!(h.is_complete());
        assert!(h.is_empty());
    }

    #[test]
    fn overlapping_history_is_well_formed_not_sequential() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        assert!(h.is_well_formed());
        assert!(!h.is_sequential());
        assert!(h.is_complete());
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn sequential_history_detected() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3), inv(2, 4), res(2, false, 4)]);
        assert!(h.is_sequential());
        assert!(h.is_well_formed());
    }

    #[test]
    fn sequential_with_trailing_pending_invocation() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3), inv(2, 4)]);
        assert!(h.is_sequential());
        assert!(!h.is_complete());
    }

    #[test]
    fn response_without_invocation_rejected() {
        let h = History::from_actions(vec![res(1, false, 3)]);
        assert_eq!(
            h.validate(),
            Err(HistoryError::ResponseWithoutInvocation { index: 0, thread: ThreadId(1) })
        );
        assert!(!h.is_well_formed());
    }

    #[test]
    fn nested_invocation_rejected() {
        let h = History::from_actions(vec![inv(1, 3), inv(1, 4)]);
        assert_eq!(
            h.validate(),
            Err(HistoryError::NestedInvocation { index: 1, thread: ThreadId(1) })
        );
    }

    #[test]
    fn mismatched_response_rejected() {
        let h = History::from_actions(vec![
            inv(1, 3),
            Action::response(ThreadId(1), E, Method("pop"), Value::Unit),
        ]);
        assert_eq!(
            h.validate(),
            Err(HistoryError::MismatchedResponse { index: 1, thread: ThreadId(1) })
        );
    }

    #[test]
    fn projections() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let h1 = h.project_thread(ThreadId(1));
        assert_eq!(h1.len(), 2);
        assert!(h1.is_sequential());
        let ho = h.project_object(E);
        assert_eq!(ho.len(), 4);
        let hnone = h.project_object(ObjectId(9));
        assert!(hnone.is_empty());
    }

    #[test]
    fn spans_and_real_time_order() {
        // t1 completes before t2 invokes: t1's op ≺H t2's op.
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3), inv(2, 4), res(2, false, 4)]);
        let spans = h.spans();
        assert_eq!(spans.len(), 2);
        assert!(History::spans_precede(&spans[0], &spans[1]));
        assert!(!History::spans_precede(&spans[1], &spans[0]));
        assert!(!History::spans_concurrent(&spans[0], &spans[1]));
    }

    #[test]
    fn overlapping_spans_are_concurrent() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let spans = h.spans();
        assert!(History::spans_concurrent(&spans[0], &spans[1]));
    }

    #[test]
    fn pending_span_never_precedes() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(2, false, 4)]);
        let spans = h.spans();
        assert!(!History::spans_precede(&spans[0], &spans[1]));
        // t2's response precedes nothing after it, but t1 is pending:
        assert!(History::spans_concurrent(&spans[0], &spans[1]));
    }

    #[test]
    fn operations_extracts_completed_only() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(2, false, 4)]);
        let ops = h.operations();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].thread, ThreadId(2));
        assert_eq!(ops[0].ret, Value::Pair(false, 4));
    }

    #[test]
    fn completions_of_complete_history_is_identity() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3)]);
        let cs = h.completions(|_| vec![Value::Pair(false, 0)]);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0], h);
    }

    #[test]
    fn completions_enumerate_drop_and_complete() {
        let h = History::from_actions(vec![inv(1, 3)]);
        let cs = h.completions(|s| vec![Value::Pair(false, s.arg.as_int().unwrap())]);
        // Either drop the pending invocation or complete it.
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().any(|c| c.is_empty()));
        assert!(cs.iter().any(|c| c.is_complete() && c.len() == 2));
    }

    #[test]
    fn completions_two_pending() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4)]);
        let cs = h.completions(|_| vec![Value::Pair(false, 0)]);
        // 2 options per pending invocation → 4 completions.
        assert_eq!(cs.len(), 4);
        for c in &cs {
            assert!(c.is_complete(), "completion not complete: {c}");
        }
    }

    #[test]
    fn push_complete_keeps_sequential() {
        let mut h = History::new();
        h.push_complete(Operation::new(ThreadId(0), E, EX, Value::Int(1), Value::Pair(false, 1)));
        h.push_complete(Operation::new(ThreadId(1), E, EX, Value::Int(2), Value::Pair(false, 2)));
        assert!(h.is_sequential());
        assert!(h.is_complete());
    }

    #[test]
    fn threads_and_objects_listed_in_first_use_order() {
        let h = History::from_actions(vec![inv(2, 1), inv(1, 2), res(2, false, 1), res(1, false, 2)]);
        assert_eq!(h.threads(), vec![ThreadId(2), ThreadId(1)]);
        assert_eq!(h.objects(), vec![E]);
    }

    #[test]
    fn error_display() {
        let e = HistoryError::NestedInvocation { index: 4, thread: ThreadId(7) };
        assert!(e.to_string().contains("index 4"));
        assert!(e.to_string().contains("t7"));
    }
}
