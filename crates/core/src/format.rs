//! Foreign-history interop: pluggable parsers for external trace formats.
//!
//! The native line format ([`crate::text`]) is what our own recorders emit;
//! the rest of the world logs histories differently. This module ingests
//! the two foreign families the linearizability-checking literature
//! actually uses as evaluation substrate, and serializes back out to them
//! so differential round-trip tests can pin every parser to the engines:
//!
//! - **`jepsen`** — porcupine/Jepsen-style operation records, one per
//!   line, in either EDN (`{:process 0, :type :invoke, :f :write,
//!   :value 3}`) or JSON-ish (`{"process": 0, "type": "invoke", "f":
//!   "write", "value": 3}`) spelling. This is the shape of histories
//!   harvested from etcd-under-Jepsen and similar distributed-system
//!   test rigs.
//! - **`kvlog`** — simple timestamped Put/Get logs: one operation per
//!   line as `<start> <end> <client> put|get <key> [<value>]`, the shape
//!   of the flat key-value traces used by lock-free-structure checkers.
//!
//! Every parser produces a typed [`History`] or a line/field-anchored
//! [`FormatError`] — never a panic, whatever the input bytes. Formats are
//! auto-detected by sniffing ([`detect`]); an explicit format always wins.
//!
//! ## Jepsen record semantics
//!
//! - `:invoke` begins an operation for `:process`; a second `:invoke`
//!   while one is pending is an error (Jepsen processes are logical
//!   threads).
//! - `:ok` completes the pending operation. For `:f write`/`:f put` the
//!   completion value is normalized to unit even when the trace echoes
//!   the written value (the etcd convention); symmetrically `:invoke`
//!   arguments for `:f read`/`:f get` are normalized to unit.
//! - `:fail` asserts the operation definitely did **not** take effect:
//!   the pending invocation is retracted from the history.
//! - `:info` means the outcome is unknown (timeout, crash, partition):
//!   the invocation stays pending — the checker explores both dropping it
//!   and completing it — and the process id is retired; re-invoking a
//!   retired process is an error.
//! - `:key` selects the object: integer keys map to object ids directly,
//!   string keys are interned in first-use order; mixing both in one
//!   history is an error. Unknown fields (`:time`, `:index`, …) are
//!   ignored.
//!
//! ## kvlog timestamp semantics
//!
//! Events are ordered by timestamp; an operation whose response stamp is
//! `-` or `?` is pending. Intervals are closed: an operation ending at
//! `t` and one starting at `t` are considered concurrent. Ties between
//! equal stamps of the same rank are broken by line order, so the order
//! is deterministic.
//!
//! ## kvlog causality metadata
//!
//! A kvlog may declare the happens-before partial order `--mode causal`
//! checks against, using `hb` lines alongside the operation lines:
//!
//! - `hb <i> <j>` — operation `i` happens-before operation `j`, where
//!   ids are 1-based positions of *operation lines* in file order
//!   (comments and `hb` lines do not count). Forward references are
//!   fine; ids out of range are errors anchored to the `hb` line.
//! - `hb session` — marks the trace causality-annotated with no edges
//!   beyond per-thread session order.
//!
//! Any `hb` line makes the trace *annotated*: [`parse_annotated`]
//! returns the declared edges translated to span indices (session order
//! itself is implicit — [`crate::history::HbRelation::causal`] always
//! includes it). Plain [`parse_as`] accepts and ignores `hb` lines, so
//! CAL mode reads annotated files unchanged.
//!
//! ```
//! use cal_core::format::{parse_auto, Format};
//! let (fmt, h) = parse_auto(
//!     "{:process 0, :type :invoke, :f :write, :value 3}\n\
//!      {:process 0, :type :ok, :f :write, :value 3}\n",
//! )?;
//! assert_eq!(fmt, Format::Jepsen);
//! assert_eq!(h.len(), 2);
//! assert!(h.is_complete());
//! # Ok::<(), cal_core::format::FormatError>(())
//! ```

use std::error::Error;
use std::fmt;

use crate::action::Action;
use crate::history::{History, HistoryError};
use crate::ids::{Method, ObjectId, ThreadId, Value};
use crate::text::{self, ParseError};

/// A history trace format understood by [`parse_as`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// The native line format of [`crate::text`].
    Native,
    /// Porcupine/Jepsen-style operation records (EDN or JSON spelling).
    Jepsen,
    /// Timestamped Put/Get logs: `<start> <end> <client> put|get <key> [<value>]`.
    KvLog,
}

impl Format {
    /// All formats, in auto-detection (sniffing) order. Native is the
    /// fallback: its sniff accepts anything, so it must come last.
    pub const ALL: [Format; 3] = [Format::Jepsen, Format::KvLog, Format::Native];
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Format::Native => "native",
            Format::Jepsen => "jepsen",
            Format::KvLog => "kvlog",
        })
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "native" => Ok(Format::Native),
            "jepsen" | "edn" | "porcupine" => Ok(Format::Jepsen),
            "kvlog" | "kv-log" => Ok(Format::KvLog),
            other => Err(format!("unknown format {other:?} (expected native, jepsen, or kvlog)")),
        }
    }
}

/// A parse failure in a foreign (or native) trace, anchored to the 1-based
/// source line and, when known, the offending field.
///
/// `line == 0` means the error is not tied to a source line (it arose
/// while *serializing* a history, or while validating an empty input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based source line of the offending input, or 0 if none applies.
    pub line: usize,
    /// The record field at fault, e.g. `":process"` or `"end"`, if known.
    pub field: Option<&'static str>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        if let Some(field) = self.field {
            write!(f, "field {field}: ")?;
        }
        f.write_str(&self.message)
    }
}

impl Error for FormatError {}

impl From<ParseError> for FormatError {
    fn from(e: ParseError) -> Self {
        FormatError { line: e.line, field: None, message: e.message }
    }
}

fn fail<T>(line: usize, field: Option<&'static str>, message: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError { line, field, message: message.into() })
}

/// One pluggable history parser. The three built-in implementations are
/// [`NativeParser`], [`JepsenParser`] and [`KvLogParser`]; [`parsers`]
/// returns them in sniffing order so [`detect`] picks the first whose
/// [`sniff`](HistoryParser::sniff) accepts the input.
pub trait HistoryParser {
    /// The format this parser implements.
    fn format(&self) -> Format;

    /// Cheap shape test on the raw input: does this look like my format?
    /// Only the first contentful line is consulted; sniffs must be fast
    /// and must not allocate proportional to the input.
    fn sniff(&self, input: &str) -> bool;

    /// Parses the full input into a validated [`History`].
    ///
    /// # Errors
    ///
    /// Returns a line/field-anchored [`FormatError`] on malformed input —
    /// including ill-formed histories (nested invocations, mismatched
    /// responses), whose errors are mapped back to the source line of the
    /// offending action.
    fn parse(&self, input: &str) -> Result<History, FormatError>;
}

/// Parser for the native line format ([`crate::text`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeParser;

/// Parser for porcupine/Jepsen-style operation records.
#[derive(Debug, Clone, Copy, Default)]
pub struct JepsenParser;

/// Parser for timestamped Put/Get logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct KvLogParser;

impl HistoryParser for NativeParser {
    fn format(&self) -> Format {
        Format::Native
    }

    fn sniff(&self, _input: &str) -> bool {
        true // fallback: anything that is not jepsen or kvlog
    }

    fn parse(&self, input: &str) -> Result<History, FormatError> {
        let (actions, lines) = parse_native(input)?;
        finish(actions, &lines)
    }
}

impl HistoryParser for JepsenParser {
    fn format(&self) -> Format {
        Format::Jepsen
    }

    fn sniff(&self, input: &str) -> bool {
        first_content_line(input).is_some_and(|t| sniff_line(t) == Format::Jepsen)
    }

    fn parse(&self, input: &str) -> Result<History, FormatError> {
        let (actions, lines) = parse_jepsen(input)?;
        finish(actions, &lines)
    }
}

impl HistoryParser for KvLogParser {
    fn format(&self) -> Format {
        Format::KvLog
    }

    fn sniff(&self, input: &str) -> bool {
        first_content_line(input).is_some_and(|t| sniff_line(t) == Format::KvLog)
    }

    fn parse(&self, input: &str) -> Result<History, FormatError> {
        let (actions, lines) = parse_kvlog(input)?;
        finish(actions, &lines)
    }
}

/// The built-in parsers in sniffing order: jepsen, kvlog, then native as
/// the unconditional fallback.
pub fn parsers() -> [&'static dyn HistoryParser; 3] {
    [&JepsenParser, &KvLogParser, &NativeParser]
}

/// Auto-detects the format of `input` by sniffing its first contentful
/// line: a line opening with `{` or `[` is jepsen; a line whose first
/// token is an integer timestamp followed by an integer-or-`-` stamp
/// (with at least five tokens) is kvlog; anything else — including empty
/// input — is native.
pub fn detect(input: &str) -> Format {
    for p in parsers() {
        if p.sniff(input) {
            return p.format();
        }
    }
    Format::Native
}

/// Parses `input` in the given format into a validated [`History`].
///
/// # Errors
///
/// Returns a line/field-anchored [`FormatError`] on any malformed input;
/// never panics, whatever the bytes.
pub fn parse_as(format: Format, input: &str) -> Result<History, FormatError> {
    let (actions, lines) = match format {
        Format::Native => parse_native(input)?,
        Format::Jepsen => parse_jepsen(input)?,
        Format::KvLog => parse_kvlog(input)?,
    };
    finish(actions, &lines)
}

/// Sniffs the format ([`detect`]) and parses. Returns the detected format
/// alongside the history so callers can report what they ingested.
///
/// # Errors
///
/// As [`parse_as`], for the detected format.
pub fn parse_auto(input: &str) -> Result<(Format, History), FormatError> {
    let format = detect(input);
    parse_as(format, input).map(|h| (format, h))
}

/// A parsed history together with any causality metadata the input
/// declared (see the module docs on kvlog `hb` lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotated {
    /// The parsed history.
    pub history: History,
    /// Declared happens-before edges as `(from, to)` span-index pairs,
    /// `Some` iff the input carried causality metadata (even with zero
    /// edges, as `hb session` declares). `None` means the trace is
    /// unannotated and causal mode should fall back to the real-time
    /// order.
    pub hb_edges: Option<Vec<(usize, usize)>>,
}

/// Like [`parse_as`], but also surfaces declared causality metadata.
/// Native and jepsen inputs never carry in-band metadata and always
/// parse with `hb_edges: None` (jepsen session-order checking is a
/// caller choice — build [`crate::history::HbRelation::causal`] with no
/// edges over the parsed history).
///
/// # Errors
///
/// As [`parse_as`]; additionally anchors malformed or out-of-range `hb`
/// declarations to their source line.
pub fn parse_annotated(format: Format, input: &str) -> Result<Annotated, FormatError> {
    match format {
        Format::Native | Format::Jepsen => {
            parse_as(format, input).map(|history| Annotated { history, hb_edges: None })
        }
        Format::KvLog => {
            let (actions, lines, hb_edges) = parse_kvlog_full(input)?;
            finish(actions, &lines).map(|history| Annotated { history, hb_edges })
        }
    }
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

/// Strips a `#` comment, ignoring `#` inside double-quoted strings (jepsen
/// records may carry string keys).
fn strip_comment(text: &str) -> &str {
    let (mut in_str, mut esc) = (false, false);
    for (i, c) in text.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &text[..i],
            _ => {}
        }
    }
    text
}

fn first_content_line(input: &str) -> Option<&str> {
    for raw in input.lines() {
        let text = strip_comment(raw).trim();
        if text.is_empty() || text.starts_with(';') {
            continue;
        }
        return Some(text);
    }
    None
}

/// Format of a single contentful line (the sniffing unit, also used by
/// [`StreamDecoder`] in auto mode).
fn sniff_line(text: &str) -> Format {
    if text.starts_with('{') || text.starts_with('[') {
        return Format::Jepsen;
    }
    let mut toks = text.split_whitespace();
    let (first, second) = (toks.next(), toks.next());
    let rest = toks.count();
    if first == Some("hb") {
        // kvlog causality metadata may lead the file (`hb session`).
        return Format::KvLog;
    }
    if let (Some(a), Some(b)) = (first, second) {
        let stampish = |t: &str| t == "-" || t == "?" || t.parse::<u64>().is_ok();
        if rest >= 3 && a.parse::<u64>().is_ok() && stampish(b) {
            return Format::KvLog;
        }
    }
    Format::Native
}

/// Validates the assembled actions, mapping any [`HistoryError`] (which
/// carries an action *index*) back to the source *line* of that action.
fn finish(actions: Vec<Action>, lines: &[usize]) -> Result<History, FormatError> {
    let history = History::from_actions(actions);
    if let Err(e) = history.validate() {
        let index = match &e {
            HistoryError::ResponseWithoutInvocation { index, .. }
            | HistoryError::NestedInvocation { index, .. }
            | HistoryError::MismatchedResponse { index, .. } => *index,
        };
        let line = lines.get(index).copied().unwrap_or(0);
        return fail(line, None, format!("ill-formed history: {e}"));
    }
    Ok(history)
}

/// First-use-order interning of object keys. Integer keys map to object
/// ids directly; string keys are assigned ids 0, 1, … in order of first
/// appearance. Mixing the two in one history would silently alias objects,
/// so it is an error.
#[derive(Debug, Default, Clone)]
struct KeyMap {
    names: Vec<String>,
    saw_int: bool,
}

impl KeyMap {
    fn int_key(&mut self, line: usize, field: Option<&'static str>, n: i64) -> Result<ObjectId, FormatError> {
        if !self.names.is_empty() {
            return fail(line, field, "cannot mix integer and string keys in one history");
        }
        self.saw_int = true;
        match u32::try_from(n) {
            Ok(id) => Ok(ObjectId(id)),
            Err(_) => fail(line, field, format!("key {n} out of range (expected 0..=u32::MAX)")),
        }
    }

    fn name_key(&mut self, line: usize, field: Option<&'static str>, name: &str) -> Result<ObjectId, FormatError> {
        if self.saw_int {
            return fail(line, field, "cannot mix integer and string keys in one history");
        }
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Ok(ObjectId(i as u32));
        }
        self.names.push(name.to_string());
        Ok(ObjectId((self.names.len() - 1) as u32))
    }
}

fn intern_method(line: usize, name: &str) -> Result<Method, FormatError> {
    text::parse_method(line, name).map_err(FormatError::from)
}

// ---------------------------------------------------------------------------
// Native
// ---------------------------------------------------------------------------

fn parse_native(input: &str) -> Result<(Vec<Action>, Vec<usize>), FormatError> {
    let mut actions = Vec::new();
    let mut lines = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        if let Some(action) = text::parse_action_line(i + 1, raw)? {
            actions.push(action);
            lines.push(i + 1);
        }
    }
    Ok((actions, lines))
}

// ---------------------------------------------------------------------------
// Jepsen
// ---------------------------------------------------------------------------

/// A parsed EDN/JSON scalar or vector from one jepsen record field.
#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Nil,
    Bool(bool),
    Int(i64),
    Str(String),
    Kw(String),
    Vec(Vec<JVal>),
}

impl fmt::Display for JVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JVal::Nil => f.write_str("nil"),
            JVal::Bool(b) => write!(f, "{b}"),
            JVal::Int(n) => write!(f, "{n}"),
            JVal::Str(s) => write!(f, "{s:?}"),
            JVal::Kw(w) => write!(f, ":{w}"),
            JVal::Vec(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '/' | '?' | '!' | '*' | '+')
}

/// A character cursor over one record line, carrying the source line
/// number for error anchoring.
struct Scan<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Scan<'a> {
    fn new(line: usize, src: &'a str) -> Self {
        Scan { src, pos: 0, line }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// EDN treats commas as whitespace, which also covers JSON separators.
    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() || c == ',' {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn take_while(&mut self, f: impl Fn(char) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if f(c) {
                self.bump();
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }

    fn err(&self, field: Option<&'static str>, message: impl Into<String>) -> FormatError {
        FormatError { line: self.line, field, message: message.into() }
    }
}

fn jval(s: &mut Scan<'_>) -> Result<JVal, FormatError> {
    s.skip_ws();
    match s.peek() {
        Some('[') => {
            s.bump();
            let mut items = Vec::new();
            loop {
                s.skip_ws();
                match s.peek() {
                    Some(']') => {
                        s.bump();
                        return Ok(JVal::Vec(items));
                    }
                    None => return Err(s.err(None, "unterminated vector: missing ']'")),
                    _ => items.push(jval(s)?),
                }
            }
        }
        Some('"') => {
            s.bump();
            let mut out = String::new();
            loop {
                match s.bump() {
                    None => return Err(s.err(None, "unterminated string")),
                    Some('"') => return Ok(JVal::Str(out)),
                    Some('\\') => match s.bump() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        other => {
                            return Err(s.err(None, format!("unsupported string escape {other:?}")))
                        }
                    },
                    Some(c) => out.push(c),
                }
            }
        }
        Some(':') => {
            s.bump();
            let w = s.take_while(ident_char);
            if w.is_empty() {
                Err(s.err(None, "empty keyword after ':'"))
            } else {
                Ok(JVal::Kw(w.to_string()))
            }
        }
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let w = s.take_while(|c| c == '-' || c.is_ascii_digit());
            w.parse::<i64>().map(JVal::Int).map_err(|_| s.err(None, format!("bad integer {w:?}")))
        }
        Some(c) if ident_char(c) => {
            let w = s.take_while(ident_char);
            match w {
                "nil" | "null" => Ok(JVal::Nil),
                "true" => Ok(JVal::Bool(true)),
                "false" => Ok(JVal::Bool(false)),
                _ => Ok(JVal::Kw(w.to_string())),
            }
        }
        Some(c) => Err(s.err(None, format!("unexpected character {c:?}"))),
        None => Err(s.err(None, "unexpected end of record")),
    }
}

fn jval_to_value(line: usize, field: Option<&'static str>, v: &JVal) -> Result<Value, FormatError> {
    match v {
        JVal::Nil => Ok(Value::Unit),
        JVal::Bool(b) => Ok(Value::Bool(*b)),
        JVal::Int(n) => Ok(Value::Int(*n)),
        JVal::Vec(items) => match items.as_slice() {
            [JVal::Bool(b), JVal::Int(n)] => Ok(Value::Pair(*b, *n)),
            _ => fail(line, field, format!("unsupported value {v} (expected nil, bool, int, or [bool int])")),
        },
        other => fail(line, field, format!("unsupported value {other} (expected nil, bool, int, or [bool int])")),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordKind {
    Invoke,
    Ok,
    Fail,
    Info,
}

#[derive(Debug)]
struct JepsenRecord {
    process: u32,
    kind: RecordKind,
    f: Option<String>,
    value: JVal,
    key: Option<JVal>,
}

fn parse_record(line: usize, text: &str) -> Result<JepsenRecord, FormatError> {
    let mut s = Scan::new(line, text);
    s.skip_ws();
    if s.bump() != Some('{') {
        return Err(s.err(None, "expected '{' to open a record"));
    }
    let (mut process, mut ktype, mut f, mut value, mut key) = (None, None, None, None, None);
    loop {
        s.skip_ws();
        match s.peek() {
            Some('}') => {
                s.bump();
                break;
            }
            None => return Err(s.err(None, "unterminated record: missing '}'")),
            _ => {}
        }
        let (name, quoted) = match s.peek() {
            Some(':') => {
                s.bump();
                let w = s.take_while(ident_char);
                if w.is_empty() {
                    return Err(s.err(None, "empty field name after ':'"));
                }
                (w.to_string(), false)
            }
            Some('"') => match jval(&mut s)? {
                JVal::Str(w) => (w, true),
                _ => unreachable!("a '\"' token always parses to JVal::Str"),
            },
            _ => return Err(s.err(None, "expected a field name like :process or \"process\"")),
        };
        if quoted {
            // JSON spelling: consume the ':' separator after a quoted name.
            // After an EDN keyword name a following ':' starts the *value*
            // keyword (`:type :invoke`), so it must stay.
            s.skip_ws();
            if s.peek() == Some(':') {
                s.bump();
            }
        }
        let v = jval(&mut s)?;
        match name.as_str() {
            "process" => process = Some(v),
            "type" => ktype = Some(v),
            "f" => f = Some(v),
            "value" => value = Some(v),
            "key" => key = Some(v),
            _ => {} // tolerate :time, :index, and friends
        }
    }
    s.skip_ws();
    if s.peek().is_some() {
        return Err(s.err(None, "trailing characters after record"));
    }

    let process = match process {
        Some(JVal::Int(n)) if u32::try_from(n).is_ok() => n as u32,
        Some(other) => {
            return fail(line, Some(":process"), format!("expected a non-negative integer process id, found {other}"))
        }
        None => return fail(line, Some(":process"), "missing required field"),
    };
    let kind = match &ktype {
        Some(JVal::Kw(w)) | Some(JVal::Str(w)) => match w.as_str() {
            "invoke" => RecordKind::Invoke,
            "ok" => RecordKind::Ok,
            "fail" => RecordKind::Fail,
            "info" => RecordKind::Info,
            other => {
                return fail(line, Some(":type"), format!("expected invoke, ok, fail, or info, found {other:?}"))
            }
        },
        Some(other) => {
            return fail(line, Some(":type"), format!("expected a keyword or string, found {other}"))
        }
        None => return fail(line, Some(":type"), "missing required field"),
    };
    let f = match f {
        None => None,
        Some(JVal::Kw(w)) | Some(JVal::Str(w)) => Some(w),
        Some(other) => {
            return fail(line, Some(":f"), format!("expected a keyword or string, found {other}"))
        }
    };
    Ok(JepsenRecord { process, kind, f, value: value.unwrap_or(JVal::Nil), key })
}

/// One decoded jepsen record's effect on the history under construction.
#[derive(Debug)]
enum JStep {
    /// A new invocation for the process.
    Invoke(Action),
    /// The matching response completing the process's pending operation.
    Complete(Action),
    /// `:fail` — the operation did not happen; retract its invocation.
    Fail(ThreadId),
    /// `:info` — outcome unknown; the invocation stays pending forever.
    Info(ThreadId),
}

/// The per-process decode state shared by the batch parser and the
/// streaming decoder: pending invocations, retired (crashed) processes,
/// and the key-interning table.
#[derive(Debug, Default)]
struct JepsenState {
    keys: KeyMap,
    /// Open invocations: process, key, method, and the invocation
    /// argument (kept to recognize etcd-style echoed write acks).
    pending: Vec<(ThreadId, ObjectId, Method, Value)>,
    retired: Vec<ThreadId>,
}

impl JepsenState {
    fn step(&mut self, line: usize, text: &str) -> Result<JStep, FormatError> {
        let rec = parse_record(line, text)?;
        let t = ThreadId(rec.process);
        match rec.kind {
            RecordKind::Invoke => {
                if self.retired.contains(&t) {
                    return fail(line, Some(":process"), format!("process {} re-invoked after :info retired it", rec.process));
                }
                if self.pending.iter().any(|(p, _, _, _)| *p == t) {
                    return fail(line, Some(":process"), format!("process {} already has a pending operation", rec.process));
                }
                let Some(name) = rec.f.as_deref() else {
                    return fail(line, Some(":f"), "missing required field on :invoke");
                };
                let method = intern_method(line, name)?;
                let object = match &rec.key {
                    None => self.keys.int_key(line, Some(":key"), 0)?,
                    Some(JVal::Int(n)) => self.keys.int_key(line, Some(":key"), *n)?,
                    Some(JVal::Str(w)) | Some(JVal::Kw(w)) => self.keys.name_key(line, Some(":key"), w)?,
                    Some(other) => {
                        return fail(line, Some(":key"), format!("expected an integer or string key, found {other}"))
                    }
                };
                let arg = if matches!(name, "read" | "get") {
                    Value::Unit // etcd-style traces put the *observed* value here
                } else {
                    jval_to_value(line, Some(":value"), &rec.value)?
                };
                self.pending.push((t, object, method, arg));
                Ok(JStep::Invoke(Action::invoke(t, object, method, arg)))
            }
            RecordKind::Ok => {
                let Some(i) = self.pending.iter().position(|(p, _, _, _)| *p == t) else {
                    return fail(line, Some(":process"), format!(":ok with no pending :invoke for process {}", rec.process));
                };
                let (_, object, method, arg) = self.pending.swap_remove(i);
                // etcd-style harnesses ack a write/put with nil or by
                // echoing the written value; both normalize to unit. A
                // put with a genuinely different return value (a
                // synchronous queue reporting true/false) keeps it.
                let echo = matches!(rec.value, JVal::Nil)
                    || jval_to_value(line, None, &rec.value).ok() == Some(arg);
                let ret = if echo && matches!(method.0, "write" | "put") {
                    Value::Unit
                } else {
                    jval_to_value(line, Some(":value"), &rec.value)?
                };
                Ok(JStep::Complete(Action::response(t, object, method, ret)))
            }
            RecordKind::Fail => {
                if !self.pending.iter().any(|(p, _, _, _)| *p == t) {
                    return fail(line, Some(":process"), format!(":fail with no pending :invoke for process {}", rec.process));
                }
                self.pending.retain(|(p, _, _, _)| *p != t);
                Ok(JStep::Fail(t))
            }
            RecordKind::Info => {
                if !self.pending.iter().any(|(p, _, _, _)| *p == t) {
                    return fail(line, Some(":process"), format!(":info with no pending :invoke for process {}", rec.process));
                }
                self.pending.retain(|(p, _, _, _)| *p != t);
                self.retired.push(t);
                Ok(JStep::Info(t))
            }
        }
    }
}

fn parse_jepsen(input: &str) -> Result<(Vec<Action>, Vec<usize>), FormatError> {
    let mut state = JepsenState::default();
    let mut actions: Vec<Action> = Vec::new();
    let mut lines: Vec<usize> = Vec::new();
    // Index into `actions` of each process's open invocation.
    let mut open: Vec<(ThreadId, usize)> = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = i + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() || text.starts_with(';') {
            continue;
        }
        match state.step(line, text)? {
            JStep::Invoke(a) => {
                open.push((a.thread(), actions.len()));
                actions.push(a);
                lines.push(line);
            }
            JStep::Complete(a) => {
                open.retain(|(t, _)| *t != a.thread());
                actions.push(a);
                lines.push(line);
            }
            JStep::Fail(t) => {
                let idx = open
                    .iter()
                    .position(|(p, _)| *p == t)
                    .expect("step() only yields Fail for a pending process");
                let (_, at) = open.remove(idx);
                actions.remove(at);
                lines.remove(at);
                for (_, j) in open.iter_mut() {
                    if *j > at {
                        *j -= 1;
                    }
                }
            }
            JStep::Info(t) => {
                // The invocation stays in the history, pending forever.
                open.retain(|(p, _)| *p != t);
            }
        }
    }
    Ok((actions, lines))
}

/// Serializes a history as jepsen records, one per action, preserving the
/// exact interleaving (round-trips through [`parse_as`] with
/// [`Format::Jepsen`] for histories whose write/put completions are unit
/// and read/get arguments are unit — which every spec family here
/// requires anyway).
pub fn format_jepsen(history: &History) -> String {
    let mut out = String::new();
    for a in history.actions() {
        let kind = if a.is_invoke() { "invoke" } else { "ok" };
        let value = a.arg().or_else(|| a.ret()).expect("every action carries a value");
        out.push_str(&format!(
            "{{:process {}, :type :{}, :f :{}, :key {}, :value {}}}\n",
            a.thread().0,
            kind,
            a.method(),
            a.object().0,
            jepsen_value(value),
        ));
    }
    out
}

fn jepsen_value(v: Value) -> String {
    match v {
        Value::Unit => "nil".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Pair(b, n) => format!("[{b} {n}]"),
    }
}

// ---------------------------------------------------------------------------
// kvlog
// ---------------------------------------------------------------------------

const KV_USAGE: &str = "expected: <start> <end|-> <client> put|get <key> [<value>]";

/// One parsed kvlog line: the operation's stamps and its actions.
#[derive(Debug)]
struct KvLine {
    start: u64,
    end: Option<u64>,
    inv: Action,
    res: Option<Action>,
}

fn parse_kvlog_line(line: usize, text: &str, keys: &mut KeyMap) -> Result<KvLine, FormatError> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    if !(5..=6).contains(&toks.len()) {
        return fail(line, None, KV_USAGE);
    }
    let start: u64 = toks[0]
        .parse()
        .map_err(|_| FormatError { line, field: Some("start"), message: format!("bad invocation timestamp {:?}", toks[0]) })?;
    let end: Option<u64> = match toks[1] {
        "-" | "?" => None,
        w => Some(w.parse().map_err(|_| FormatError {
            line,
            field: Some("end"),
            message: format!("bad response timestamp {w:?} (use '-' for a pending operation)"),
        })?),
    };
    if let Some(e) = end {
        if e < start {
            return fail(line, Some("end"), format!("response timestamp {e} precedes invocation timestamp {start}"));
        }
    }
    let c = toks[2];
    let client: u32 = c
        .strip_prefix('c')
        .or_else(|| c.strip_prefix('t'))
        .unwrap_or(c)
        .parse()
        .map_err(|_| FormatError { line, field: Some("client"), message: format!("bad client id {c:?} (expected e.g. c0 or 0)") })?;
    let t = ThreadId(client);
    let is_write = match toks[3].to_ascii_lowercase().as_str() {
        "put" | "write" | "set" => true,
        "get" | "read" => false,
        other => {
            return fail(line, Some("op"), format!("unknown operation {other:?} (expected put or get)"))
        }
    };
    let key_tok = toks[4];
    let object = if let Ok(n) = key_tok.parse::<i64>() {
        keys.int_key(line, Some("key"), n)?
    } else if !key_tok.is_empty() && key_tok.chars().all(ident_char) {
        keys.name_key(line, Some("key"), key_tok)?
    } else {
        return fail(line, Some("key"), format!("bad key {key_tok:?}"));
    };
    let val = toks.get(5).copied();
    let (inv, res) = if is_write {
        let Some(v) = val.and_then(|w| w.parse::<i64>().ok()) else {
            return fail(line, Some("value"), "put needs an integer value");
        };
        let m = Method("write");
        (Action::invoke(t, object, m, Value::Int(v)), end.map(|_| Action::response(t, object, m, Value::Unit)))
    } else {
        let m = Method("read");
        let inv = Action::invoke(t, object, m, Value::Unit);
        let res = match end {
            None => None, // a value on a pending get is ignored: the outcome is unknown
            Some(_) => {
                let Some(v) = val.filter(|w| *w != "-" && *w != "?").and_then(|w| w.parse::<i64>().ok()) else {
                    return fail(line, Some("value"), "completed get needs the returned integer value");
                };
                Some(Action::response(t, object, m, Value::Int(v)))
            }
        };
        (inv, res)
    };
    Ok(KvLine { start, end, inv, res })
}

/// One parsed `hb` metadata line (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HbDecl {
    /// `hb session` — annotated, no extra edges.
    Session,
    /// `hb <i> <j>` — 1-based operation-line ids, `i` happens-before `j`.
    Edge(usize, usize),
}

const HB_USAGE: &str = "expected 'hb session' or 'hb <i> <j>' (1-based operation-line ids)";

fn parse_hb_line(line: usize, text: &str) -> Result<HbDecl, FormatError> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    match toks.as_slice() {
        ["hb", "session"] => Ok(HbDecl::Session),
        ["hb", a, b] => {
            let id = |w: &str| -> Result<usize, FormatError> {
                match w.parse::<usize>() {
                    Ok(n) if n >= 1 => Ok(n),
                    _ => fail(line, Some("hb"), format!("bad operation id {w:?}: {HB_USAGE}")),
                }
            };
            let (i, j) = (id(a)?, id(b)?);
            if i == j {
                return fail(line, Some("hb"), format!("self-edge: operation {i} cannot happen before itself"));
            }
            Ok(HbDecl::Edge(i, j))
        }
        _ => fail(line, Some("hb"), HB_USAGE),
    }
}

fn parse_kvlog(input: &str) -> Result<(Vec<Action>, Vec<usize>), FormatError> {
    let (actions, lines, _) = parse_kvlog_full(input)?;
    Ok((actions, lines))
}

#[allow(clippy::type_complexity)]
fn parse_kvlog_full(
    input: &str,
) -> Result<(Vec<Action>, Vec<usize>, Option<Vec<(usize, usize)>>), FormatError> {
    let mut keys = KeyMap::default();
    // (ts, rank, seq) sort key: invocations (rank 0) before responses
    // (rank 1) at equal stamps — closed intervals, touching endpoints
    // overlap — then emission order for determinism. Invocation events
    // carry their operation-line ordinal so declared `hb` edges can be
    // translated to post-sort span indices.
    let mut events: Vec<(u64, u8, usize, usize, Action, Option<usize>)> = Vec::new();
    let mut seq = 0usize;
    let mut ops = 0usize;
    let mut decls: Vec<(usize, HbDecl)> = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = i + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() || text.starts_with(';') {
            continue;
        }
        if text.split_whitespace().next() == Some("hb") {
            decls.push((line, parse_hb_line(line, text)?));
            continue;
        }
        let kv = parse_kvlog_line(line, text, &mut keys)?;
        events.push((kv.start, 0, seq, line, kv.inv, Some(ops)));
        ops += 1;
        seq += 1;
        if let (Some(end), Some(res)) = (kv.end, kv.res) {
            events.push((end, 1, seq, line, res, None));
            seq += 1;
        }
    }
    events.sort_by_key(|(ts, rank, seq, _, _, _)| (*ts, *rank, *seq));
    let mut actions = Vec::with_capacity(events.len());
    let mut lines = Vec::with_capacity(events.len());
    // Operation-line ordinal → span index (invocation rank after the sort).
    let mut span_of_op = vec![0usize; ops];
    let mut span = 0usize;
    for (_, _, _, line, action, op) in events {
        if let Some(o) = op {
            span_of_op[o] = span;
            span += 1;
        }
        actions.push(action);
        lines.push(line);
    }
    if decls.is_empty() {
        return Ok((actions, lines, None));
    }
    let mut edges = Vec::new();
    for (line, decl) in decls {
        if let HbDecl::Edge(i, j) = decl {
            for id in [i, j] {
                if id > ops {
                    return fail(line, Some("hb"), format!("operation id {id} out of range (the log has {ops} operations)"));
                }
            }
            edges.push((span_of_op[i - 1], span_of_op[j - 1]));
        }
    }
    Ok((actions, lines, Some(edges)))
}

/// Serializes a register-shaped history (reads and writes only) as a
/// kvlog, one operation per line, stamping events with their action
/// indices so parsing reconstructs the exact interleaving.
///
/// # Errors
///
/// Returns a [`FormatError`] (with `line == 0`) when the history is
/// ill-formed or contains operations kvlog cannot express: methods other
/// than read/get/write/put, non-integer write arguments, non-unit write
/// returns, or non-integer read returns.
pub fn format_kvlog(history: &History) -> Result<String, FormatError> {
    let spans = history
        .try_spans()
        .map_err(|e| FormatError { line: 0, field: None, message: format!("ill-formed history: {e}") })?;
    let actions = history.actions();
    let mut out = String::new();
    for span in spans {
        let inv = &actions[span.inv];
        let end = match span.resp {
            Some(r) => r.to_string(),
            None => "-".to_string(),
        };
        let key = inv.object().0;
        let client = inv.thread().0;
        let line = match inv.method().0 {
            "write" | "put" => {
                let Some(Value::Int(v)) = inv.arg() else {
                    return fail(0, None, format!("kvlog cannot express a put with argument {:?}", inv.arg()));
                };
                if let Some(r) = span.resp {
                    if actions[r].ret() != Some(Value::Unit) {
                        return fail(0, None, format!("kvlog cannot express a put returning {:?}", actions[r].ret()));
                    }
                }
                format!("{} {} c{} put {} {}\n", span.inv, end, client, key, v)
            }
            "read" | "get" => {
                let ret = match span.resp {
                    None => "-".to_string(),
                    Some(r) => match actions[r].ret() {
                        Some(Value::Int(v)) => v.to_string(),
                        other => {
                            return fail(0, None, format!("kvlog cannot express a get returning {other:?}"))
                        }
                    },
                };
                format!("{} {} c{} get {} {}\n", span.inv, end, client, key, ret)
            }
            other => return fail(0, None, format!("kvlog cannot express method {other:?}")),
        };
        out.push_str(&line);
    }
    Ok(out)
}

/// Like [`format_kvlog`], appending causality metadata: one `hb <i> <j>`
/// line per edge (span indices translated to 1-based operation-line
/// ids), or a bare `hb session` directive when `edges` is empty — so the
/// output always round-trips through [`parse_annotated`] as annotated.
///
/// # Errors
///
/// As [`format_kvlog`]; additionally rejects edges whose endpoints are
/// out of range or equal.
pub fn format_kvlog_annotated(
    history: &History,
    edges: &[(usize, usize)],
) -> Result<String, FormatError> {
    let mut out = format_kvlog(history)?;
    let ops = history.spans().len();
    if edges.is_empty() {
        out.push_str("hb session\n");
        return Ok(out);
    }
    for &(from, to) in edges {
        if from >= ops || to >= ops {
            return fail(0, None, format!("hb edge ({from}, {to}) out of range (the history has {ops} operations)"));
        }
        if from == to {
            return fail(0, None, format!("hb self-edge on operation {from}"));
        }
        // format_kvlog emits one operation line per span, in span order,
        // so span index k is operation-line id k + 1.
        out.push_str(&format!("hb {} {}\n", from + 1, to + 1));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

/// One decoded effect of a wire line on a streaming checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireItem {
    /// Push this action.
    Action(Action),
    /// Seal the thread's pending operation (`:fail`/`:info` records and
    /// pending kvlog operations map here; the streaming checker's
    /// timeout-admission explores both dropping and completing it).
    Abandon(ThreadId),
    /// A declared happens-before edge between two operations, as 0-based
    /// arrival-order operation indices (kvlog `hb <i> <j>` lines; ids on
    /// the wire are 1-based). Streaming kvlog decodes operations in
    /// arrival order, so arrival index and span index coincide. Forward
    /// references — `to` not yet decoded — are legal; the streaming
    /// checker buffers them. A bare `hb session` directive decodes to no
    /// items (causal mode is a checker-level switch when streaming).
    HbEdge {
        /// The operation that happens before `to`.
        from: usize,
        /// The operation that happens after `from`.
        to: usize,
    },
}

/// An incremental decoder turning wire lines of any [`Format`] into
/// [`WireItem`]s for a streaming checker. Construct with `None` to
/// auto-detect from the first contentful line (the choice then latches).
///
/// Streaming caveats, by design:
///
/// - jepsen `:fail` cannot retract an already-pushed invocation, so both
///   `:fail` and `:info` become [`WireItem::Abandon`] — a sound
///   over-approximation of the batch semantics (the checker considers
///   dropping the operation, which is what `:fail` asserts).
/// - kvlog lines decode in arrival order; the batch parser's global
///   timestamp sort is impossible online, so each line's invocation and
///   response are emitted adjacently. This is stricter than batch order
///   for overlapping operations — concurrent clients should stream
///   interleaved lines.
#[derive(Debug)]
pub struct StreamDecoder {
    format: Option<Format>,
    jepsen: JepsenState,
    kv_keys: KeyMap,
}

impl StreamDecoder {
    /// Creates a decoder for `format`, or an auto-detecting one for `None`.
    pub fn new(format: Option<Format>) -> Self {
        StreamDecoder { format, jepsen: JepsenState::default(), kv_keys: KeyMap::default() }
    }

    /// The decoder's format, once known (auto mode latches on the first
    /// contentful line).
    pub fn format(&self) -> Option<Format> {
        self.format
    }

    /// Decodes one wire line into its checker effects. Blank and comment
    /// lines decode to no items. `line` is the 1-based wire line number
    /// used in error anchors.
    ///
    /// # Errors
    ///
    /// Returns a line/field-anchored [`FormatError`] for malformed lines;
    /// the decoder stays usable afterwards (the line had no effect).
    pub fn decode_line(&mut self, line: usize, raw: &str) -> Result<Vec<WireItem>, FormatError> {
        let text = strip_comment(raw).trim();
        if text.is_empty() || text.starts_with(';') {
            return Ok(Vec::new());
        }
        let format = *self.format.get_or_insert_with(|| sniff_line(text));
        match format {
            Format::Native => match text::parse_action_line(line, raw) {
                Ok(Some(a)) => Ok(vec![WireItem::Action(a)]),
                Ok(None) => Ok(Vec::new()),
                Err(e) => Err(e.into()),
            },
            Format::Jepsen => match self.jepsen.step(line, text)? {
                JStep::Invoke(a) | JStep::Complete(a) => Ok(vec![WireItem::Action(a)]),
                JStep::Fail(t) | JStep::Info(t) => Ok(vec![WireItem::Abandon(t)]),
            },
            Format::KvLog => {
                if text.split_whitespace().next() == Some("hb") {
                    return match parse_hb_line(line, text)? {
                        HbDecl::Session => Ok(Vec::new()),
                        HbDecl::Edge(i, j) => Ok(vec![WireItem::HbEdge { from: i - 1, to: j - 1 }]),
                    };
                }
                let kv = parse_kvlog_line(line, text, &mut self.kv_keys)?;
                let t = kv.inv.thread();
                let mut items = vec![WireItem::Action(kv.inv)];
                match kv.res {
                    Some(res) => items.push(WireItem::Action(res)),
                    None => items.push(WireItem::Abandon(t)),
                }
                Ok(items)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse_history;

    const EDN_OK: &str = "\
; an etcd-style register trace
{:process 0, :type :invoke, :f :write, :value 1, :key 0}
{:process 1, :type :invoke, :f :read, :value nil, :key 0}
{:process 0, :type :ok, :f :write, :value 1, :key 0}
{:process 1, :type :ok, :f :read, :value 1, :key 0}
";

    #[test]
    fn jepsen_edn_basic() {
        let h = parse_as(Format::Jepsen, EDN_OK).unwrap();
        assert_eq!(h.len(), 4);
        assert!(h.is_complete());
        // write ack echoing the value is normalized to unit:
        assert_eq!(h.actions()[2].ret(), Some(Value::Unit));
        // read invoke is normalized to unit:
        assert_eq!(h.actions()[1].arg(), Some(Value::Unit));
        assert_eq!(h.actions()[3].ret(), Some(Value::Int(1)));
    }

    #[test]
    fn jepsen_json_spelling() {
        let input = "\
{\"process\": 0, \"type\": \"invoke\", \"f\": \"write\", \"value\": 7}
{\"process\": 0, \"type\": \"ok\", \"f\": \"write\", \"value\": 7}
";
        let h = parse_as(Format::Jepsen, input).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.actions()[0].arg(), Some(Value::Int(7)));
        assert_eq!(h.actions()[1].ret(), Some(Value::Unit));
    }

    #[test]
    fn jepsen_fail_retracts_invocation() {
        let input = "\
{:process 0, :type :invoke, :f :write, :value 1}
{:process 1, :type :invoke, :f :write, :value 2}
{:process 0, :type :fail, :f :write, :value 1}
{:process 1, :type :ok, :f :write}
";
        let h = parse_as(Format::Jepsen, input).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.actions()[0].thread(), ThreadId(1));
        assert!(h.is_complete());
    }

    #[test]
    fn jepsen_info_leaves_pending_and_retires() {
        let input = "\
{:process 0, :type :invoke, :f :write, :value 1}
{:process 0, :type :info, :f :write}
";
        let h = parse_as(Format::Jepsen, input).unwrap();
        assert_eq!(h.len(), 1);
        assert!(!h.is_complete());

        let reuse = format!("{input}{{:process 0, :type :invoke, :f :write, :value 2}}\n");
        let e = parse_as(Format::Jepsen, &reuse).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("retired"), "{e}");
    }

    #[test]
    fn jepsen_nested_invoke_is_anchored() {
        let input = "\
{:process 0, :type :invoke, :f :write, :value 1}
{:process 0, :type :invoke, :f :write, :value 2}
";
        let e = parse_as(Format::Jepsen, input).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.field, Some(":process"));
    }

    #[test]
    fn jepsen_string_keys_intern_and_mixing_errors() {
        let input = "\
{:process 0, :type :invoke, :f :write, :value 1, :key \"x\"}
{:process 0, :type :ok, :f :write}
{:process 1, :type :invoke, :f :write, :value 2, :key \"y\"}
{:process 1, :type :ok, :f :write}
";
        let h = parse_as(Format::Jepsen, input).unwrap();
        assert_eq!(h.actions()[0].object(), ObjectId(0));
        assert_eq!(h.actions()[2].object(), ObjectId(1));

        let mixed = format!("{input}{{:process 2, :type :invoke, :f :write, :value 3, :key 5}}\n");
        let e = parse_as(Format::Jepsen, &mixed).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("mix"), "{e}");
    }

    #[test]
    fn jepsen_unknown_fields_tolerated() {
        let input = "\
{:process 0, :type :invoke, :f :write, :value 1, :time 1234, :index 0}
{:process 0, :type :ok, :f :write, :value 1, :time 1299, :index 1}
";
        assert_eq!(parse_as(Format::Jepsen, input).unwrap().len(), 2);
    }

    #[test]
    fn jepsen_diagnostics_never_panic() {
        for bad in [
            "{",
            "{}",
            "{:process}",
            "{:process 0}",
            "{:process 0, :type :frob}",
            "{:process :nemesis, :type :info}",
            "{:process 0, :type :invoke}",
            "{:process 0, :type :ok, :f :write}",
            "{:process 0, :type :invoke, :f :write, :value \"str\"}",
            "{:process 0, :type :invoke, :f :write, :value [1 2 3]}",
            "{:process 0, :type :invoke, :f :write, :value 1} trailing",
            "{:process 99999999999999999999, :type :invoke, :f :write}",
        ] {
            let e = parse_as(Format::Jepsen, bad).unwrap_err();
            assert_eq!(e.line, 1, "input: {bad}");
        }
    }

    const KVLOG_OK: &str = "\
# ahorn H: write(1); then read():2 concurrent with write(2)
0 1 c0 put x 1
2 5 c1 get x 2
3 6 c2 put x 2
";

    #[test]
    fn kvlog_basic_orders_by_timestamp() {
        let h = parse_as(Format::KvLog, KVLOG_OK).unwrap();
        assert_eq!(h.len(), 6);
        assert!(h.is_complete());
        // write(1) completes before the read invokes:
        assert!(h.actions()[0].is_invoke() && h.actions()[0].arg() == Some(Value::Int(1)));
        assert!(h.actions()[1].is_response());
        assert_eq!(h.actions()[2].thread(), ThreadId(1));
    }

    #[test]
    fn kvlog_closed_intervals_touching_endpoints_overlap() {
        // op A ends at 5, op B starts at 5: the invocation sorts first,
        // so A and B are concurrent.
        let input = "0 5 c0 put 0 1\n5 9 c1 get 0 1\n";
        let h = parse_as(Format::KvLog, input).unwrap();
        let spans = h.spans();
        assert!(History::spans_concurrent(&spans[0], &spans[1]));
    }

    #[test]
    fn kvlog_pending_and_aliases() {
        let input = "0 - 0 write k1 7\n1 9 t1 read k1 0\n";
        let h = parse_as(Format::KvLog, input).unwrap();
        assert_eq!(h.len(), 3);
        assert!(!h.is_complete());
        assert_eq!(h.actions()[0].object(), h.actions()[1].object());
    }

    #[test]
    fn kvlog_diagnostics_are_anchored() {
        for (bad, line, needle) in [
            ("0 1 c0 put x\n", 1, "value"),
            ("0 1 c0 get x\n", 1, "value"),
            ("9 1 c0 put x 1\n", 1, "precedes"),
            ("0 1 c0 frob x 1\n", 1, "operation"),
            ("x 1 c0 put x 1\n", 1, "timestamp"),
            ("0 1 cat put x 1\n", 1, "client"),
            ("0 1 c0 put x 1 extra\n", 1, "expected"),
            ("0 1 c0 put 3 1\n0 1 c1 put x 1\n", 2, "mix"),
        ] {
            let e = parse_as(Format::KvLog, bad).unwrap_err();
            assert_eq!(e.line, line, "input: {bad:?} err: {e}");
            assert!(e.to_string().contains(needle), "input: {bad:?} err: {e}");
        }
    }

    #[test]
    fn kvlog_overlapping_same_client_anchors_nested_invocation() {
        let input = "0 9 c0 put x 1\n2 5 c0 get x 0\n";
        let e = parse_as(Format::KvLog, input).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ill-formed"), "{e}");
    }

    #[test]
    fn detect_three_ways() {
        assert_eq!(detect(EDN_OK), Format::Jepsen);
        assert_eq!(detect("# comment\n[\"json\"]\n"), Format::Jepsen);
        assert_eq!(detect(KVLOG_OK), Format::KvLog);
        assert_eq!(detect("# c\nt0 inv o0.write 1\n"), Format::Native);
        assert_eq!(detect(""), Format::Native);
        // a native line never has a leading integer token:
        assert_eq!(detect("t0 inv o0.write 1\n"), Format::Native);
    }

    #[test]
    fn parse_auto_reports_format() {
        let (f, h) = parse_auto(KVLOG_OK).unwrap();
        assert_eq!(f, Format::KvLog);
        assert_eq!(h.len(), 6);
    }

    const NATIVE_SAMPLE: &str = "\
t1 inv o0.exchange 3
t2 inv o0.exchange 4
t1 res o0.exchange (true,4)
t2 res o0.exchange (true,3)
t3 inv o0.write 5
";

    #[test]
    fn jepsen_round_trip_preserves_history() {
        let h = parse_history(NATIVE_SAMPLE).unwrap();
        let text = format_jepsen(&h);
        let h2 = parse_as(Format::Jepsen, &text).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn kvlog_round_trip_preserves_register_history() {
        let h = parse_history(
            "t0 inv o0.write 1\nt1 inv o1.read ()\nt0 res o0.write ()\nt1 res o1.read 0\nt2 inv o0.read ()\n",
        )
        .unwrap();
        let text = format_kvlog(&h).unwrap();
        let h2 = parse_as(Format::KvLog, &text).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn kvlog_rejects_unrepresentable_methods() {
        let h = parse_history("t0 inv o0.exchange 3\nt0 res o0.exchange (false,3)\n").unwrap();
        let e = format_kvlog(&h).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("exchange"), "{e}");
    }

    #[test]
    fn native_errors_flow_through() {
        let e = parse_as(Format::Native, "t0 inv o0.write 1\nbogus\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn format_error_display() {
        let e = FormatError { line: 3, field: Some(":process"), message: "nope".into() };
        assert_eq!(e.to_string(), "line 3: field :process: nope");
        let e = FormatError { line: 0, field: None, message: "nope".into() };
        assert_eq!(e.to_string(), "nope");
    }

    #[test]
    fn stream_decoder_native_and_auto() {
        let mut d = StreamDecoder::new(None);
        assert_eq!(d.format(), None);
        assert!(d.decode_line(1, "# comment").unwrap().is_empty());
        let items = d.decode_line(2, "t0 inv o0.write 1").unwrap();
        assert_eq!(d.format(), Some(Format::Native));
        assert_eq!(items.len(), 1);
        // latched: a jepsen-looking line is now a native parse error
        assert!(d.decode_line(3, "{:process 0, :type :invoke, :f :write}").is_err());
    }

    #[test]
    fn stream_decoder_jepsen() {
        let mut d = StreamDecoder::new(Some(Format::Jepsen));
        let inv = d.decode_line(1, "{:process 0, :type :invoke, :f :write, :value 1}").unwrap();
        assert!(matches!(inv.as_slice(), [WireItem::Action(a)] if a.is_invoke()));
        let ok = d.decode_line(2, "{:process 0, :type :ok, :f :write}").unwrap();
        assert!(matches!(ok.as_slice(), [WireItem::Action(a)] if a.is_response()));
        d.decode_line(3, "{:process 1, :type :invoke, :f :read}").unwrap();
        let info = d.decode_line(4, "{:process 1, :type :info, :f :read}").unwrap();
        assert_eq!(info, vec![WireItem::Abandon(ThreadId(1))]);
        // decoder survives a malformed line:
        assert!(d.decode_line(5, "{:process oops").is_err());
        let again = d.decode_line(6, "{:process 2, :type :invoke, :f :write, :value 2}").unwrap();
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn kvlog_hb_edges_map_to_span_indices() {
        // Operation lines appear out of timestamp order: op 1 (file
        // order) starts at t=4 and becomes span 1; op 2 starts at t=0
        // and becomes span 0. The declared edge 1→2 must follow them.
        let input = "\
4 5 c0 put x 1
0 1 c1 get x 0
hb 1 2
";
        let a = parse_annotated(Format::KvLog, input).unwrap();
        assert_eq!(a.history.len(), 4);
        assert_eq!(a.hb_edges, Some(vec![(1, 0)]));
        // plain parse_as accepts and ignores the metadata:
        assert_eq!(parse_as(Format::KvLog, input).unwrap(), a.history);
    }

    #[test]
    fn kvlog_hb_session_is_annotated_with_no_edges() {
        let input = "hb session\n0 1 c0 put x 1\n";
        let a = parse_annotated(Format::KvLog, input).unwrap();
        assert_eq!(a.hb_edges, Some(vec![]));
        assert_eq!(detect(input), Format::KvLog);

        let plain = parse_annotated(Format::KvLog, "0 1 c0 put x 1\n").unwrap();
        assert_eq!(plain.hb_edges, None);
    }

    #[test]
    fn kvlog_hb_diagnostics_are_anchored() {
        for (bad, line, needle) in [
            ("hb\n0 1 c0 put x 1\n", 1, "expected"),
            ("hb 1\n0 1 c0 put x 1\n", 1, "expected"),
            ("hb one 2\n0 1 c0 put x 1\n", 1, "bad operation id"),
            ("hb 0 2\n0 1 c0 put x 1\n", 1, "bad operation id"),
            ("hb 1 1\n0 1 c0 put x 1\n", 1, "self-edge"),
            ("0 1 c0 put x 1\nhb 1 2\n", 2, "out of range"),
        ] {
            let e = parse_annotated(Format::KvLog, bad).unwrap_err();
            assert_eq!(e.line, line, "input: {bad:?} err: {e}");
            assert!(e.to_string().contains(needle), "input: {bad:?} err: {e}");
        }
    }

    #[test]
    fn kvlog_annotated_round_trip() {
        let h = parse_history("t0 inv o0.write 1\nt0 res o0.write ()\nt1 inv o0.read ()\nt1 res o0.read 0\n").unwrap();
        let text = format_kvlog_annotated(&h, &[(0, 1)]).unwrap();
        let a = parse_annotated(Format::KvLog, &text).unwrap();
        assert_eq!(a.history, h);
        assert_eq!(a.hb_edges, Some(vec![(0, 1)]));

        let session = format_kvlog_annotated(&h, &[]).unwrap();
        assert!(session.ends_with("hb session\n"));
        let a = parse_annotated(Format::KvLog, &session).unwrap();
        assert_eq!(a.hb_edges, Some(vec![]));

        assert!(format_kvlog_annotated(&h, &[(0, 9)]).is_err());
        assert!(format_kvlog_annotated(&h, &[(1, 1)]).is_err());
    }

    #[test]
    fn jepsen_and_native_parse_annotated_as_unannotated() {
        let a = parse_annotated(Format::Jepsen, EDN_OK).unwrap();
        assert_eq!(a.hb_edges, None);
        let a = parse_annotated(Format::Native, NATIVE_SAMPLE).unwrap();
        assert_eq!(a.hb_edges, None);
    }

    #[test]
    fn stream_decoder_kvlog_hb() {
        let mut d = StreamDecoder::new(Some(Format::KvLog));
        assert!(d.decode_line(1, "hb session").unwrap().is_empty());
        d.decode_line(2, "0 1 c0 put x 1").unwrap();
        let edge = d.decode_line(3, "hb 1 2").unwrap();
        assert_eq!(edge, vec![WireItem::HbEdge { from: 0, to: 1 }]);
        assert!(d.decode_line(4, "hb 1 1").is_err());
    }

    #[test]
    fn stream_decoder_kvlog() {
        let mut d = StreamDecoder::new(Some(Format::KvLog));
        let done = d.decode_line(1, "0 4 c0 put x 1").unwrap();
        assert_eq!(done.len(), 2);
        assert!(matches!(&done[0], WireItem::Action(a) if a.is_invoke()));
        assert!(matches!(&done[1], WireItem::Action(a) if a.is_response()));
        let pend = d.decode_line(2, "5 - c1 get x").unwrap();
        assert!(matches!(&pend[0], WireItem::Action(a) if a.is_invoke()));
        assert_eq!(pend[1], WireItem::Abandon(ThreadId(1)));
    }
}
