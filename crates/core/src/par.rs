//! Parallel CAL membership checking.
//!
//! Two levels of parallelism, both justified by the structure of the
//! problem rather than bolted on:
//!
//! 1. **Per-object decomposition** (CAL locality). A CA-trace set built
//!    from independent per-object specifications constrains each object's
//!    elements separately, so a history is CAL iff every per-object
//!    subhistory is CAL w.r.t. the restricted specification
//!    ([`crate::spec::CaSpec::restrict`]). The pre-pass partitions the
//!    history by object id, checks the subhistories concurrently, and
//!    merges the per-object witnesses back into one trace whose
//!    interleaving respects the full history's real-time order.
//! 2. **Frontier splitting with a shared memo table.** When the history
//!    cannot be decomposed (single object, or objects coupled through a
//!    composed specification), the candidate *first* CA-elements are
//!    enumerated once and distributed across workers, each running the
//!    sequential DFS ([`crate::check`]) against one shared, mutex-striped
//!    failed-state table ([`ShardedMemo`]) so pruning discovered by one
//!    worker benefits all of them. A shared node counter makes
//!    [`CheckOptions::max_nodes`] a global budget, and an internal stop
//!    latch winds every worker down as soon as one finds a witness.
//!
//! Both paths reuse [`CheckOptions::deadline`] / [`CheckOptions::cancel`]
//! for cooperative interruption and aggregate per-worker [`CheckStats`].

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::bitset::BitSet;
use crate::check::{
    panic_message, realtime_order, CancelToken, CheckError, CheckOptions, CheckOutcome,
    CheckStats, InterruptReason, MemoTable, Search, Verdict,
};
use crate::history::{History, Span};
use crate::ids::ObjectId;
use crate::obs::{ObjectOutcome, StatsSink};
use crate::op::Operation;
use crate::spec::{CaSpec, Invocation};
use crate::trace::{CaElement, CaTrace};

/// A concurrent failed-state table striped over N mutex-guarded shards.
///
/// Keys are `(matched-set, spec-state)` pairs; a key is inserted once the
/// subtree below it has been exhaustively refuted, after which every
/// worker prunes on it. Striping keeps the common case (distinct shards)
/// contention-free without pulling in a lock-free map; see DESIGN.md for
/// the rationale.
pub struct ShardedMemo<K> {
    shards: Box<[Mutex<HashSet<K>>]>,
    mask: usize,
}

impl<K: Eq + Hash> ShardedMemo<K> {
    /// Creates a table striped for `threads` workers (shard count is a
    /// power of two, several shards per worker).
    pub fn for_threads(threads: usize) -> Self {
        Self::with_shards((threads.max(1) * 8).min(512))
    }

    /// Creates a table with `shards` stripes (rounded up to a power of
    /// two, at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let stripes: Vec<Mutex<HashSet<K>>> = (0..n).map(|_| Mutex::new(HashSet::new())).collect();
        ShardedMemo { shards: stripes.into_boxed_slice(), mask: n - 1 }
    }

    /// The stripe index `key` hashes to — stable for the table's lifetime,
    /// and what per-shard memo statistics ([`crate::obs::StatsSink`]) are
    /// keyed by.
    pub fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & self.mask
    }

    fn shard(&self, key: &K) -> &Mutex<HashSet<K>> {
        &self.shards[self.shard_index(key)]
    }

    /// Whether `key` has been recorded as a refuted state.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key).lock().contains(key)
    }

    /// Records a refuted state; returns `true` if it was new.
    pub fn insert(&self, key: K) -> bool {
        self.shard(&key).lock().insert(key)
    }

    /// Total number of recorded states.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K> fmt::Debug for ShardedMemo<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMemo").field("shards", &self.shards.len()).finish()
    }
}

/// Decides whether `history` is CAL w.r.t. `spec` using
/// [`CheckOptions::parallel`] (one worker per available core).
///
/// Same verdict semantics as [`crate::check::check_cal`]; see
/// [`check_cal_par_with`].
///
/// # Examples
///
/// ```
/// use cal_core::par::check_cal_par;
/// use cal_core::text::parse_history;
/// # use cal_core::spec::{CaSpec, Invocation};
/// # use cal_core::trace::CaElement;
/// # use cal_core::Value;
/// # #[derive(Debug)]
/// # struct AnySingleton;
/// # impl CaSpec for AnySingleton {
/// #     type State = ();
/// #     fn initial(&self) {}
/// #     fn step(&self, _: &(), e: &CaElement) -> Option<()> { (e.len() == 1).then_some(()) }
/// #     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// # }
/// let h = parse_history(
///     "t1 inv o0.noop 0\n\
///      t2 inv o0.noop 0\n\
///      t1 res o0.noop 0\n\
///      t2 res o0.noop 0\n",
/// )
/// .unwrap();
/// let outcome = check_cal_par(&h, &AnySingleton).unwrap();
/// assert!(outcome.verdict.is_cal());
/// ```
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_cal_par<S>(history: &History, spec: &S) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    check_cal_par_with(history, spec, &CheckOptions::parallel())
}

/// Like [`check_cal_par`], with explicit [`CheckOptions`]
/// ([`CheckOptions::threads`] sets the worker count).
///
/// Always returns the same verdict as the sequential
/// [`crate::check::check_cal_with`] on decided inputs: `Cal` exactly when
/// a witness exists (possibly a different, equally valid witness) and
/// `NotCal` exactly when none does. Undecided outcomes
/// (`ResourcesExhausted`, `Interrupted`) arise under the same budgets,
/// with `max_nodes` interpreted as a budget on the *total* nodes across
/// workers.
///
/// When the history touches several objects and the specification can be
/// restricted to every one of them ([`CaSpec::restrict`]), the check
/// decomposes into independent per-object subchecks (CAL locality) run in
/// parallel; otherwise the top-level frontier of candidate first elements
/// is split across workers sharing one memo table.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed
/// and [`CheckError::SpecPanicked`] if the specification panics.
pub fn check_cal_par_with<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    // Validate up front so both paths see a well-formed history.
    history.try_spans()?;
    let objects = history.objects();
    if objects.len() >= 2 {
        let parts = catch_unwind(AssertUnwindSafe(|| {
            objects
                .iter()
                .map(|&o| spec.restrict(o).map(|s| (o, s)))
                .collect::<Option<Vec<(ObjectId, S)>>>()
        }))
        .map_err(|p| CheckError::SpecPanicked(panic_message(p)))?;
        if let Some(parts) = parts {
            return check_decomposed(history, parts, options);
        }
    }
    frontier_search(history, spec, options)
}

/// One entry of the root frontier: a legal first CA-element, the span
/// indices it matches, and the spec state it leads to.
struct Branch<S: CaSpec> {
    element: CaElement,
    subset: Vec<usize>,
    state: S::State,
}

/// Per-worker aggregation of a frontier or decomposed run.
#[derive(Default)]
struct WorkerTally {
    stats: CheckStats,
    deadline: bool,
    user_cancelled: bool,
    exhausted: bool,
}

impl WorkerTally {
    /// Folds one finished sub-search into the tally, classifying its
    /// interrupt (an internal stop is *not* a user cancellation).
    fn absorb<S: CaSpec>(&mut self, search: &Search<'_, S>, options: &CheckOptions) {
        self.stats += search.stats;
        match search.interrupted {
            Some(InterruptReason::DeadlineExceeded) => self.deadline = true,
            Some(InterruptReason::Cancelled) => {
                if options.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    self.user_cancelled = true;
                }
            }
            None => {}
        }
        self.exhausted |= search.exhausted;
    }
}

/// Whole-history search with the top-level frontier split across workers.
fn frontier_search<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let start = Instant::now();
    let spans = history.try_spans()?;
    let initial = catch_unwind(AssertUnwindSafe(|| spec.initial()))
        .map_err(|p| CheckError::SpecPanicked(panic_message(p)))?;
    // Root success: no complete operation to explain.
    if spans.iter().all(|s| !s.is_complete()) {
        return Ok(CheckOutcome {
            verdict: Verdict::Cal(CaTrace::new()),
            stats: CheckStats::default(),
        });
    }
    let sink = options.sink.as_deref();
    let mut root_stats = CheckStats::default();
    if options.max_nodes == 0 {
        if let Some(sink) = sink {
            sink.on_budget_exhausted(0);
        }
        return Ok(CheckOutcome { verdict: Verdict::ResourcesExhausted, stats: root_stats });
    }
    // The root expansion is one node, mirroring the sequential search.
    root_stats.nodes = 1;
    if let Some(sink) = sink {
        sink.on_node();
    }
    let (succs, pending_preds) = realtime_order(&spans);
    let branches =
        collect_root_branches(&spans, &pending_preds, spec, &initial, &mut root_stats, sink)
            .map_err(CheckError::SpecPanicked)?;
    if branches.is_empty() {
        return Ok(CheckOutcome { verdict: Verdict::NotCal, stats: root_stats });
    }

    let workers = options.threads.max(1).min(branches.len());
    if let Some(sink) = sink {
        sink.on_root_frontier(branches.len(), workers);
    }
    let memo: ShardedMemo<(BitSet, S::State)> = ShardedMemo::for_threads(workers);
    let nodes = AtomicU64::new(root_stats.nodes);
    let stop = CancelToken::new();
    let next = AtomicUsize::new(0);
    let witness: Mutex<Option<CaTrace>> = Mutex::new(None);
    let panicked: Mutex<Option<String>> = Mutex::new(None);

    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut tally = WorkerTally::default();
                    loop {
                        if stop.is_cancelled() {
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(branch) = branches.get(idx) else { break };
                        let mut preds = pending_preds.clone();
                        let mut matched = BitSet::new(spans.len().max(1));
                        for &i in &branch.subset {
                            matched.insert(i);
                            for &j in &succs[i] {
                                preds[j] -= 1;
                            }
                        }
                        let mut search = Search::new(
                            &spans,
                            spec,
                            options,
                            succs.clone(),
                            preds,
                            MemoTable::Shared(&memo),
                            Some(&nodes),
                            Some(&stop),
                            start,
                        );
                        let found = search.dfs(&mut matched, &branch.state);
                        if let Some(msg) = search.panicked.take() {
                            tally.stats += search.stats;
                            let mut slot = panicked.lock();
                            if slot.is_none() {
                                *slot = Some(msg);
                            }
                            stop.cancel();
                            break;
                        }
                        if found {
                            tally.stats += search.stats;
                            let mut trace = vec![branch.element.clone()];
                            trace.extend(std::mem::take(&mut search.witness));
                            let mut slot = witness.lock();
                            if slot.is_none() {
                                *slot = Some(CaTrace::from_elements(trace));
                            }
                            stop.cancel();
                            break;
                        }
                        tally.absorb(&search, options);
                        if search.interrupted.is_some() || search.exhausted {
                            break;
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("checker worker panicked")).collect()
    });

    if let Some(msg) = panicked.into_inner() {
        return Err(CheckError::SpecPanicked(msg));
    }
    let mut stats = root_stats;
    let mut deadline = false;
    let mut user_cancelled = false;
    let mut exhausted = false;
    for tally in tallies {
        stats += tally.stats;
        deadline |= tally.deadline;
        user_cancelled |= tally.user_cancelled;
        exhausted |= tally.exhausted;
    }
    let verdict = if let Some(trace) = witness.into_inner() {
        Verdict::Cal(trace)
    } else if deadline {
        Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded }
    } else if user_cancelled {
        Verdict::Interrupted { reason: InterruptReason::Cancelled }
    } else if exhausted {
        Verdict::ResourcesExhausted
    } else {
        Verdict::NotCal
    };
    Ok(CheckOutcome { verdict, stats })
}

/// Enumerates every legal first CA-element from the root state, in the
/// same order the sequential DFS would try them. Counts each attempted
/// element in `stats`. Returns the spec's panic message on panic.
fn collect_root_branches<S: CaSpec>(
    spans: &[Span],
    pending_preds: &[usize],
    spec: &S,
    initial: &S::State,
    stats: &mut CheckStats,
    sink: Option<&dyn StatsSink>,
) -> Result<Vec<Branch<S>>, String> {
    let minimal: Vec<usize> =
        (0..spans.len()).filter(|&i| pending_preds[i] == 0).collect();
    if let Some(sink) = sink {
        sink.on_frontier(minimal.len());
    }
    let max_size = catch_unwind(AssertUnwindSafe(|| spec.max_element_size()))
        .map_err(panic_message)?
        .max(1);
    let mut out = Vec::new();
    let mut subset: Vec<usize> = Vec::with_capacity(max_size);
    grow_subsets(spans, spec, initial, &minimal, 0, max_size, &mut subset, stats, sink, &mut out)?;
    Ok(out)
}

/// Mirror of `Search::try_subsets`, collecting branches instead of
/// recursing into a DFS.
#[allow(clippy::too_many_arguments)]
fn grow_subsets<S: CaSpec>(
    spans: &[Span],
    spec: &S,
    initial: &S::State,
    minimal: &[usize],
    from: usize,
    max_size: usize,
    subset: &mut Vec<usize>,
    stats: &mut CheckStats,
    sink: Option<&dyn StatsSink>,
    out: &mut Vec<Branch<S>>,
) -> Result<(), String> {
    if !subset.is_empty() {
        collect_elements(spans, spec, initial, subset, stats, sink, out)?;
    }
    if subset.len() == max_size {
        return Ok(());
    }
    for (k, &i) in minimal.iter().enumerate().skip(from) {
        if let Some(&first) = subset.first() {
            if spans[i].object != spans[first].object {
                continue;
            }
            if !subset.iter().all(|&j| History::spans_concurrent(&spans[i], &spans[j])) {
                continue;
            }
        }
        subset.push(i);
        grow_subsets(spans, spec, initial, minimal, k + 1, max_size, subset, stats, sink, out)?;
        subset.pop();
    }
    Ok(())
}

/// Mirror of `Search::try_element`: enumerates the completion choices of
/// `subset` and records every element the spec accepts from the root.
fn collect_elements<S: CaSpec>(
    spans: &[Span],
    spec: &S,
    initial: &S::State,
    subset: &[usize],
    stats: &mut CheckStats,
    sink: Option<&dyn StatsSink>,
    out: &mut Vec<Branch<S>>,
) -> Result<(), String> {
    let invocations: Vec<Invocation> = subset
        .iter()
        .map(|&i| {
            let s = &spans[i];
            Invocation::new(s.thread, s.object, s.method, s.arg)
        })
        .collect();
    let mut choices: Vec<Vec<Operation>> = Vec::with_capacity(subset.len());
    for (k, &i) in subset.iter().enumerate() {
        let s = &spans[i];
        let ops = match s.operation() {
            Some(op) => vec![op],
            None => {
                let peers: Vec<Invocation> = invocations
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, inv)| *inv)
                    .collect();
                catch_unwind(AssertUnwindSafe(|| spec.completions_among(&invocations[k], &peers)))
                    .map_err(panic_message)?
                    .into_iter()
                    .map(|ret| s.operation_with_ret(ret))
                    .collect()
            }
        };
        if ops.is_empty() {
            return Ok(());
        }
        choices.push(ops);
    }
    let mut pick = vec![0usize; subset.len()];
    loop {
        let ops: Vec<Operation> = pick.iter().zip(&choices).map(|(&c, opts)| opts[c]).collect();
        let object = ops[0].object;
        if let Ok(element) = CaElement::new(object, ops) {
            stats.elements_tried += 1;
            if let Some(sink) = sink {
                sink.on_element_tried();
            }
            let next = catch_unwind(AssertUnwindSafe(|| spec.step(initial, &element)))
                .map_err(panic_message)?;
            if let Some(state) = next {
                out.push(Branch { element, subset: subset.to_vec(), state });
            }
        }
        let mut d = 0;
        loop {
            if d == pick.len() {
                return Ok(());
            }
            pick[d] += 1;
            if pick[d] < choices[d].len() {
                break;
            }
            pick[d] = 0;
            d += 1;
        }
    }
}

/// One per-object subcheck's result.
struct SubResult {
    object: ObjectId,
    /// Witness elements and the sub-span indices each matched, when CAL.
    witness: Option<(Vec<CaElement>, Vec<Vec<usize>>)>,
    /// `true` when the subsearch completed and refuted the subhistory.
    not_cal: bool,
    tally: WorkerTally,
    panicked: Option<String>,
}

/// Checks each object's subhistory independently (CAL locality), in
/// parallel, and merges per-object witnesses into one trace.
fn check_decomposed<S>(
    history: &History,
    parts: Vec<(ObjectId, S)>,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let start = Instant::now();
    let subs: Vec<(ObjectId, S, History)> = parts
        .into_iter()
        .map(|(o, s)| {
            let sub = history.project_object(o);
            (o, s, sub)
        })
        .collect();
    let workers = options.threads.max(1).min(subs.len());
    let sink = options.sink.as_deref();
    let nodes = AtomicU64::new(0);
    let stop = CancelToken::new();
    let next = AtomicUsize::new(0);

    let results: Vec<SubResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<SubResult> = Vec::new();
                    loop {
                        if stop.is_cancelled() {
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some((object, spec, sub)) = subs.get(idx) else { break };
                        if let Some(sink) = sink {
                            sink.on_object_start(*object);
                        }
                        let sub_start = Instant::now();
                        let result = check_subhistory(sub, spec, options, &nodes, &stop, start);
                        if let Some(sink) = sink {
                            sink.on_object_done(
                                *object,
                                sub_start.elapsed(),
                                classify_subresult(&result),
                            );
                        }
                        let decisive_negative = result.not_cal
                            || result.panicked.is_some()
                            || result.tally.exhausted
                            || result.tally.deadline
                            || result.tally.user_cancelled;
                        let _ = object;
                        mine.push(result);
                        if decisive_negative {
                            // Siblings cannot change the aggregate verdict;
                            // wind everyone down.
                            stop.cancel();
                            break;
                        }
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("checker worker panicked"))
            .collect()
    });

    let mut stats = CheckStats::default();
    let mut deadline = false;
    let mut user_cancelled = false;
    let mut exhausted = false;
    let mut not_cal = false;
    let mut witnesses: Vec<(ObjectId, Vec<CaElement>, Vec<Vec<usize>>)> = Vec::new();
    for result in results {
        stats += result.tally.stats;
        if let Some(msg) = result.panicked {
            return Err(CheckError::SpecPanicked(msg));
        }
        deadline |= result.tally.deadline;
        user_cancelled |= result.tally.user_cancelled;
        exhausted |= result.tally.exhausted;
        not_cal |= result.not_cal;
        if let Some((elements, sets)) = result.witness {
            witnesses.push((result.object, elements, sets));
        }
    }
    // A refuted subhistory is decisive regardless of interrupts elsewhere:
    // H CAL implies H|o CAL for every object o (locality).
    let verdict = if not_cal {
        Verdict::NotCal
    } else if deadline {
        Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded }
    } else if user_cancelled {
        Verdict::Interrupted { reason: InterruptReason::Cancelled }
    } else if exhausted {
        Verdict::ResourcesExhausted
    } else {
        debug_assert_eq!(witnesses.len(), subs.len(), "every subcheck must have decided");
        Verdict::Cal(merge_object_witnesses(history, witnesses))
    };
    Ok(CheckOutcome { verdict, stats })
}

/// Classifies a finished subcheck for [`StatsSink::on_object_done`].
fn classify_subresult(result: &SubResult) -> ObjectOutcome {
    if result.panicked.is_some() {
        ObjectOutcome::SpecPanicked
    } else if result.witness.is_some() {
        ObjectOutcome::Cal
    } else if result.not_cal {
        ObjectOutcome::NotCal
    } else if result.tally.exhausted {
        ObjectOutcome::Exhausted
    } else {
        ObjectOutcome::Interrupted
    }
}

/// Runs the sequential DFS on one object's subhistory, charging the
/// shared node budget and observing the shared stop latch.
fn check_subhistory<S: CaSpec>(
    sub: &History,
    spec: &S,
    options: &CheckOptions,
    nodes: &AtomicU64,
    stop: &CancelToken,
    start: Instant,
) -> SubResult {
    let object = sub.objects().first().copied().unwrap_or(ObjectId(0));
    let mut result = SubResult {
        object,
        witness: None,
        not_cal: false,
        tally: WorkerTally::default(),
        panicked: None,
    };
    let spans = match sub.try_spans() {
        Ok(spans) => spans,
        Err(e) => {
            // Unreachable: a projection of a well-formed history is
            // well-formed. Surface it as a spec-independent failure.
            result.panicked = Some(format!("ill-formed subhistory: {e}"));
            return result;
        }
    };
    let initial = match catch_unwind(AssertUnwindSafe(|| spec.initial())) {
        Ok(s) => s,
        Err(p) => {
            result.panicked = Some(panic_message(p));
            return result;
        }
    };
    let (succs, pending_preds) = realtime_order(&spans);
    let mut search = Search::new(
        &spans,
        spec,
        options,
        succs,
        pending_preds,
        MemoTable::Local(HashSet::new()),
        Some(nodes),
        Some(stop),
        start,
    );
    let mut matched = BitSet::new(spans.len().max(1));
    let found = search.dfs(&mut matched, &initial);
    if let Some(msg) = search.panicked.take() {
        result.tally.stats += search.stats;
        result.panicked = Some(msg);
        return result;
    }
    if found {
        result.tally.stats += search.stats;
        result.witness =
            Some((std::mem::take(&mut search.witness), std::mem::take(&mut search.witness_sets)));
        return result;
    }
    result.tally.absorb(&search, options);
    result.not_cal = search.interrupted.is_none() && !search.exhausted;
    result
}

/// Interleaves per-object witnesses into a single trace agreeing with the
/// full history's real-time order.
///
/// Element `E` occupies the index interval `(maxinv(E), minresp(E))`:
/// `maxinv` is the largest invocation index among its operations and
/// `minresp` the smallest response index (`∞` for operations the checker
/// completed). `F` must precede `E` in any agreeing trace iff
/// `minresp(F) < maxinv(E)`. The merge is greedy: with `m` the minimum
/// `minresp` over all remaining elements, any queue head with
/// `maxinv ≤ m` can be emitted next — the queue holding the minimizing
/// element always has one, because per-object witness order already
/// respects the per-object real-time order.
fn merge_object_witnesses(
    history: &History,
    parts: Vec<(ObjectId, Vec<CaElement>, Vec<Vec<usize>>)>,
) -> CaTrace {
    let spans = history.spans();
    let mut by_object: HashMap<ObjectId, Vec<&Span>> = HashMap::new();
    for span in &spans {
        by_object.entry(span.object).or_default().push(span);
    }
    struct Item {
        element: CaElement,
        maxinv: usize,
        minresp: usize,
    }
    let mut queues: Vec<VecDeque<Item>> = parts
        .into_iter()
        .map(|(object, elements, sets)| {
            let object_spans = by_object.get(&object).map(Vec::as_slice).unwrap_or(&[]);
            elements
                .into_iter()
                .zip(sets)
                .map(|(element, set)| {
                    // The k-th span of H|o is the k-th object-o span of H:
                    // projection preserves invocation order.
                    let maxinv =
                        set.iter().map(|&k| object_spans[k].inv).max().unwrap_or(0);
                    let minresp = set
                        .iter()
                        .map(|&k| object_spans[k].resp.unwrap_or(usize::MAX))
                        .min()
                        .unwrap_or(usize::MAX);
                    Item { element, maxinv, minresp }
                })
                .collect()
        })
        .collect();
    let mut merged = CaTrace::new();
    loop {
        let m = queues
            .iter()
            .flat_map(|q| q.iter().map(|item| item.minresp))
            .min();
        let Some(m) = m else { break };
        let q = queues
            .iter()
            .position(|q| q.front().is_some_and(|head| head.maxinv <= m))
            .expect("per-object witnesses always have an emittable head");
        let head = queues[q].pop_front().expect("chosen queue has a head");
        merged.push(head.element);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::check::{check_cal_with, witness_explains};
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::spec::PerObject;

    const EX: Method = Method("exchange");

    /// The exchanger-shaped spec from the sequential checker's tests.
    #[derive(Debug, Clone)]
    struct MiniExchanger(ObjectId);

    impl CaSpec for MiniExchanger {
        type State = ();

        fn initial(&self) {}

        fn step(&self, _: &(), e: &CaElement) -> Option<()> {
            if e.object() != self.0 {
                return None;
            }
            match e.ops() {
                [a] => {
                    let (ok, v) = a.ret.as_pair()?;
                    (!ok && Value::Int(v) == a.arg).then_some(())
                }
                [a, b] => {
                    let (oka, va) = a.ret.as_pair()?;
                    let (okb, vb) = b.ret.as_pair()?;
                    (oka && okb && a.arg == Value::Int(vb) && b.arg == Value::Int(va))
                        .then_some(())
                }
                _ => None,
            }
        }

        fn max_element_size(&self) -> usize {
            2
        }

        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            let v = inv.arg.as_int().unwrap_or(0);
            vec![Value::Pair(false, v)]
        }

        fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
            let mut out = self.completions_of(inv);
            out.extend(peers.iter().filter_map(|p| Some(Value::Pair(true, p.arg.as_int()?))));
            out
        }

        fn restrict(&self, object: ObjectId) -> Option<Self> {
            (object == self.0).then(|| self.clone())
        }
    }

    fn inv_on(o: ObjectId, t: u32, v: i64) -> Action {
        Action::invoke(ThreadId(t), o, EX, Value::Int(v))
    }

    fn res_on(o: ObjectId, t: u32, ok: bool, v: i64) -> Action {
        Action::response(ThreadId(t), o, EX, Value::Pair(ok, v))
    }

    fn threads_options(threads: usize) -> CheckOptions {
        CheckOptions { threads, ..CheckOptions::default() }
    }

    /// An odd number of identical concurrent success-claiming exchanges:
    /// NotCal, with heavy backtracking.
    fn hard_history(o: ObjectId, k: u32, base_thread: u32) -> Vec<Action> {
        let mut acts: Vec<Action> = (0..k).map(|t| inv_on(o, base_thread + t, 0)).collect();
        acts.extend((0..k).map(|t| res_on(o, base_thread + t, true, 0)));
        acts
    }

    #[test]
    fn parallel_matches_sequential_on_swap() {
        let o = ObjectId(0);
        let h = History::from_actions(vec![
            inv_on(o, 1, 3),
            inv_on(o, 2, 4),
            res_on(o, 1, true, 4),
            res_on(o, 2, true, 3),
        ]);
        let spec = MiniExchanger(o);
        for threads in [1, 2, 8] {
            let outcome = check_cal_par_with(&h, &spec, &threads_options(threads)).unwrap();
            assert!(outcome.verdict.is_cal(), "threads={threads}: {:?}", outcome.verdict);
            let witness = outcome.verdict.witness().unwrap();
            assert!(witness_explains(&h, &spec, witness));
        }
    }

    #[test]
    fn parallel_refutes_hard_history() {
        let o = ObjectId(0);
        let h = History::from_actions(hard_history(o, 7, 1));
        let spec = MiniExchanger(o);
        let seq = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
        assert_eq!(seq.verdict, Verdict::NotCal);
        for threads in [1, 2, 8] {
            let outcome = check_cal_par_with(&h, &spec, &threads_options(threads)).unwrap();
            assert_eq!(outcome.verdict, Verdict::NotCal, "threads={threads}");
            assert!(outcome.stats.nodes > 0);
        }
    }

    #[test]
    fn decomposition_checks_objects_independently() {
        // Two independent exchangers, both satisfiable.
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 1, 5),
            inv_on(b, 2, 6),
            res_on(b, 1, true, 6),
            res_on(b, 2, true, 5),
        ]);
        let spec = PerObject::new(vec![(a, MiniExchanger(a)), (b, MiniExchanger(b))]);
        let outcome = check_cal_par_with(&h, &spec, &threads_options(4)).unwrap();
        assert!(outcome.verdict.is_cal(), "{:?}", outcome.verdict);
        let witness = outcome.verdict.witness().unwrap();
        assert_eq!(witness.len(), 2);
        assert!(witness_explains(&h, &spec, witness));
    }

    #[test]
    fn decomposition_respects_cross_object_real_time_order() {
        // Object a's swap completes strictly before object b's begins: the
        // merged witness must put a's element first.
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 3, 5),
            inv_on(b, 4, 6),
            res_on(b, 3, true, 6),
            res_on(b, 4, true, 5),
        ]);
        let spec = PerObject::new(vec![(a, MiniExchanger(a)), (b, MiniExchanger(b))]);
        let outcome = check_cal_par_with(&h, &spec, &threads_options(2)).unwrap();
        let witness = outcome.verdict.witness().expect("CAL");
        assert_eq!(witness.elements()[0].object(), a);
        assert_eq!(witness.elements()[1].object(), b);
        assert!(witness_explains(&h, &spec, witness));
    }

    #[test]
    fn decomposition_finds_the_bad_object() {
        // Object a fine; object b's swap is sequential (not CAL).
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 1, 5),
            res_on(b, 1, true, 6),
            inv_on(b, 2, 6),
            res_on(b, 2, true, 5),
        ]);
        let spec = PerObject::new(vec![(a, MiniExchanger(a)), (b, MiniExchanger(b))]);
        for threads in [1, 4] {
            let outcome = check_cal_par_with(&h, &spec, &threads_options(threads)).unwrap();
            assert_eq!(outcome.verdict, Verdict::NotCal, "threads={threads}");
        }
    }

    #[test]
    fn multi_object_falls_back_without_restrict() {
        /// A spec that refuses to restrict: forces whole-history search.
        #[derive(Debug)]
        struct Coupled(MiniExchanger, MiniExchanger);
        impl CaSpec for Coupled {
            type State = ();
            fn initial(&self) {}
            fn step(&self, _: &(), e: &CaElement) -> Option<()> {
                self.0.step(&(), e).or_else(|| self.1.step(&(), e))
            }
            fn max_element_size(&self) -> usize {
                2
            }
            fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
                self.0.completions_of(inv)
            }
            fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
                self.0.completions_among(inv, peers)
            }
        }
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 1, 5),
            inv_on(b, 2, 6),
            res_on(b, 1, true, 6),
            res_on(b, 2, true, 5),
        ]);
        let spec = Coupled(MiniExchanger(a), MiniExchanger(b));
        let outcome = check_cal_par_with(&h, &spec, &threads_options(4)).unwrap();
        assert!(outcome.verdict.is_cal(), "{:?}", outcome.verdict);
    }

    #[test]
    fn shared_budget_is_global() {
        let o = ObjectId(0);
        let h = History::from_actions(hard_history(o, 9, 1));
        let spec = MiniExchanger(o);
        let options = CheckOptions { max_nodes: 3, threads: 4, ..CheckOptions::default() };
        let outcome = check_cal_par_with(&h, &spec, &options).unwrap();
        assert_eq!(outcome.verdict, Verdict::ResourcesExhausted);
    }

    #[test]
    fn cancelled_token_interrupts_parallel_search() {
        let o = ObjectId(0);
        let token = CancelToken::new();
        token.cancel();
        let options = CheckOptions {
            cancel: Some(token),
            max_nodes: u64::MAX,
            memoize: false,
            threads: 4,
            ..CheckOptions::default()
        };
        let h = History::from_actions(hard_history(o, 13, 1));
        let outcome = check_cal_par_with(&h, &MiniExchanger(o), &options).unwrap();
        assert_eq!(
            outcome.verdict,
            Verdict::Interrupted { reason: InterruptReason::Cancelled }
        );
    }

    #[test]
    fn empty_and_pending_only_histories_are_cal() {
        let o = ObjectId(0);
        let spec = MiniExchanger(o);
        let empty = History::new();
        assert!(check_cal_par_with(&empty, &spec, &threads_options(4))
            .unwrap()
            .verdict
            .is_cal());
        let pending = History::from_actions(vec![inv_on(o, 1, 3)]);
        let outcome = check_cal_par_with(&pending, &spec, &threads_options(4)).unwrap();
        assert!(outcome.verdict.is_cal());
    }

    #[test]
    fn sharded_memo_inserts_and_finds() {
        let memo: ShardedMemo<(u32, u32)> = ShardedMemo::with_shards(7);
        assert!(memo.is_empty());
        assert!(memo.insert((1, 2)));
        assert!(!memo.insert((1, 2)));
        assert!(memo.contains(&(1, 2)));
        assert!(!memo.contains(&(2, 1)));
        assert_eq!(memo.len(), 1);
    }
}
