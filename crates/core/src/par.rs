//! Parallel CAL membership checking.
//!
//! Two levels of parallelism, both justified by the structure of the
//! problem rather than bolted on:
//!
//! 1. **Per-object decomposition** (CAL locality). A CA-trace set built
//!    from independent per-object specifications constrains each object's
//!    elements separately, so a history is CAL iff every per-object
//!    subhistory is CAL w.r.t. the restricted specification
//!    ([`crate::spec::CaSpec::restrict`]). The pre-pass partitions the
//!    history by object id, checks the subhistories concurrently, and
//!    merges the per-object witnesses back into one trace whose
//!    interleaving respects the full history's real-time order.
//! 2. **Work-stealing frontier splitting with a shared memo table.** When
//!    the history cannot be decomposed (single object, or objects coupled
//!    through a composed specification), the candidate *first* CA-elements
//!    are enumerated once into a global injector, and workers run the
//!    arena-based DFS against one shared lock-free fingerprint table
//!    ([`crate::fpmemo::FpMemo`]) so pruning discovered by one worker
//!    benefits all of them. Idle workers steal deep subtrees from busy
//!    peers' Chase–Lev-style deques ([`CheckOptions::stealing`]), so a
//!    skewed root split no longer strands cores. A shared node counter
//!    makes [`CheckOptions::max_nodes`] a global budget, and an internal
//!    stop latch winds every worker down as soon as one finds a witness.
//!    (The simpler unbounded mutex-striped [`ShardedMemo`] remains
//!    available for callers that need exact, eviction-free memoization.)
//!
//! Both drivers live in the shared search kernel ([`crate::engine`]) and
//! are inherited by every checker; this module merely instantiates them
//! for the CAL domain ([`crate::check`]). Both paths reuse
//! [`CheckOptions::deadline`] / [`CheckOptions::cancel`] for cooperative
//! interruption and aggregate per-worker [`CheckStats`].

use std::borrow::Cow;

use crate::check::{steps_to_trace, CalDomain};
use crate::engine::{self, SpecRef};
use crate::history::History;
use crate::spec::CaSpec;

pub use crate::check::{CheckError, CheckOptions, CheckOutcome, CheckStats};
pub use crate::engine::ShardedMemo;

/// Decides whether `history` is CAL w.r.t. `spec` using
/// [`CheckOptions::parallel`] (one worker per available core).
///
/// Same verdict semantics as [`crate::check::check_cal`]; see
/// [`check_cal_par_with`].
///
/// # Examples
///
/// ```
/// use cal_core::par::check_cal_par;
/// use cal_core::text::parse_history;
/// # use cal_core::spec::{CaSpec, Invocation};
/// # use cal_core::trace::CaElement;
/// # use cal_core::Value;
/// # #[derive(Debug)]
/// # struct AnySingleton;
/// # impl CaSpec for AnySingleton {
/// #     type State = ();
/// #     fn initial(&self) {}
/// #     fn step(&self, _: &(), e: &CaElement) -> Option<()> { (e.len() == 1).then_some(()) }
/// #     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// # }
/// let h = parse_history(
///     "t1 inv o0.noop 0\n\
///      t2 inv o0.noop 0\n\
///      t1 res o0.noop 0\n\
///      t2 res o0.noop 0\n",
/// )
/// .unwrap();
/// let outcome = check_cal_par(&h, &AnySingleton).unwrap();
/// assert!(outcome.verdict.is_cal());
/// ```
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_cal_par<S>(history: &History, spec: &S) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    check_cal_par_with(history, spec, &CheckOptions::parallel())
}

/// Like [`check_cal_par`], with explicit [`CheckOptions`]
/// ([`CheckOptions::threads`] sets the worker count).
///
/// Always returns the same verdict as the sequential
/// [`crate::check::check_cal_with`] on decided inputs: `Cal` exactly when
/// a witness exists (possibly a different, equally valid witness) and
/// `NotCal` exactly when none does. Undecided outcomes
/// (`ResourcesExhausted`, `Interrupted`) arise under the same budgets,
/// with `max_nodes` interpreted as a budget on the *total* nodes across
/// workers.
///
/// When the history touches several objects and the specification can be
/// restricted to every one of them ([`CaSpec::restrict`]), the check
/// decomposes into independent per-object subchecks (CAL locality) run in
/// parallel; otherwise the top-level frontier of candidate first elements
/// is split across work-stealing workers sharing one lock-free memo table.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed
/// and [`CheckError::SpecPanicked`] if the specification panics.
pub fn check_cal_par_with<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let domain = CalDomain::new(Cow::Borrowed(history), SpecRef::Borrowed(spec))?;
    Ok(engine::search_par(&domain, options)?.map_witness(steps_to_trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::check::{check_cal_with, witness_explains, CancelToken, Verdict};
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::spec::{CaSpec, Invocation, PerObject};
    use crate::trace::CaElement;

    const EX: Method = Method("exchange");

    /// The exchanger-shaped spec from the sequential checker's tests.
    #[derive(Debug, Clone)]
    struct MiniExchanger(ObjectId);

    impl CaSpec for MiniExchanger {
        type State = ();

        fn initial(&self) {}

        fn step(&self, _: &(), e: &CaElement) -> Option<()> {
            if e.object() != self.0 {
                return None;
            }
            match e.ops() {
                [a] => {
                    let (ok, v) = a.ret.as_pair()?;
                    (!ok && Value::Int(v) == a.arg).then_some(())
                }
                [a, b] => {
                    let (oka, va) = a.ret.as_pair()?;
                    let (okb, vb) = b.ret.as_pair()?;
                    (oka && okb && a.arg == Value::Int(vb) && b.arg == Value::Int(va))
                        .then_some(())
                }
                _ => None,
            }
        }

        fn max_element_size(&self) -> usize {
            2
        }

        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            let v = inv.arg.as_int().unwrap_or(0);
            vec![Value::Pair(false, v)]
        }

        fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
            let mut out = self.completions_of(inv);
            out.extend(peers.iter().filter_map(|p| Some(Value::Pair(true, p.arg.as_int()?))));
            out
        }

        fn restrict(&self, object: ObjectId) -> Option<Self> {
            (object == self.0).then(|| self.clone())
        }
    }

    fn inv_on(o: ObjectId, t: u32, v: i64) -> Action {
        Action::invoke(ThreadId(t), o, EX, Value::Int(v))
    }

    fn res_on(o: ObjectId, t: u32, ok: bool, v: i64) -> Action {
        Action::response(ThreadId(t), o, EX, Value::Pair(ok, v))
    }

    fn threads_options(threads: usize) -> CheckOptions {
        CheckOptions { threads, ..CheckOptions::default() }
    }

    /// An odd number of identical concurrent success-claiming exchanges:
    /// NotCal, with heavy backtracking.
    fn hard_history(o: ObjectId, k: u32, base_thread: u32) -> Vec<Action> {
        let mut acts: Vec<Action> = (0..k).map(|t| inv_on(o, base_thread + t, 0)).collect();
        acts.extend((0..k).map(|t| res_on(o, base_thread + t, true, 0)));
        acts
    }

    #[test]
    fn parallel_matches_sequential_on_swap() {
        let o = ObjectId(0);
        let h = History::from_actions(vec![
            inv_on(o, 1, 3),
            inv_on(o, 2, 4),
            res_on(o, 1, true, 4),
            res_on(o, 2, true, 3),
        ]);
        let spec = MiniExchanger(o);
        for threads in [1, 2, 8] {
            let outcome = check_cal_par_with(&h, &spec, &threads_options(threads)).unwrap();
            assert!(outcome.verdict.is_cal(), "threads={threads}: {:?}", outcome.verdict);
            let witness = outcome.verdict.witness().unwrap();
            assert!(witness_explains(&h, &spec, witness));
        }
    }

    #[test]
    fn parallel_refutes_hard_history() {
        let o = ObjectId(0);
        let h = History::from_actions(hard_history(o, 7, 1));
        let spec = MiniExchanger(o);
        let seq = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
        assert_eq!(seq.verdict, Verdict::NotCal);
        for threads in [1, 2, 8] {
            let outcome = check_cal_par_with(&h, &spec, &threads_options(threads)).unwrap();
            assert_eq!(outcome.verdict, Verdict::NotCal, "threads={threads}");
            assert!(outcome.stats.nodes > 0);
        }
    }

    #[test]
    fn decomposition_checks_objects_independently() {
        // Two independent exchangers, both satisfiable.
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 1, 5),
            inv_on(b, 2, 6),
            res_on(b, 1, true, 6),
            res_on(b, 2, true, 5),
        ]);
        let spec = PerObject::new(vec![(a, MiniExchanger(a)), (b, MiniExchanger(b))]);
        let outcome = check_cal_par_with(&h, &spec, &threads_options(4)).unwrap();
        assert!(outcome.verdict.is_cal(), "{:?}", outcome.verdict);
        let witness = outcome.verdict.witness().unwrap();
        assert_eq!(witness.len(), 2);
        assert!(witness_explains(&h, &spec, witness));
    }

    #[test]
    fn decomposition_respects_cross_object_real_time_order() {
        // Object a's swap completes strictly before object b's begins: the
        // merged witness must put a's element first.
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 3, 5),
            inv_on(b, 4, 6),
            res_on(b, 3, true, 6),
            res_on(b, 4, true, 5),
        ]);
        let spec = PerObject::new(vec![(a, MiniExchanger(a)), (b, MiniExchanger(b))]);
        let outcome = check_cal_par_with(&h, &spec, &threads_options(2)).unwrap();
        let witness = outcome.verdict.witness().expect("CAL");
        assert_eq!(witness.elements()[0].object(), a);
        assert_eq!(witness.elements()[1].object(), b);
        assert!(witness_explains(&h, &spec, witness));
    }

    #[test]
    fn decomposition_finds_the_bad_object() {
        // Object a fine; object b's swap is sequential (not CAL).
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 1, 5),
            res_on(b, 1, true, 6),
            inv_on(b, 2, 6),
            res_on(b, 2, true, 5),
        ]);
        let spec = PerObject::new(vec![(a, MiniExchanger(a)), (b, MiniExchanger(b))]);
        for threads in [1, 4] {
            let outcome = check_cal_par_with(&h, &spec, &threads_options(threads)).unwrap();
            assert_eq!(outcome.verdict, Verdict::NotCal, "threads={threads}");
        }
    }

    #[test]
    fn multi_object_falls_back_without_restrict() {
        /// A spec that refuses to restrict: forces whole-history search.
        #[derive(Debug)]
        struct Coupled(MiniExchanger, MiniExchanger);
        impl CaSpec for Coupled {
            type State = ();
            fn initial(&self) {}
            fn step(&self, _: &(), e: &CaElement) -> Option<()> {
                self.0.step(&(), e).or_else(|| self.1.step(&(), e))
            }
            fn max_element_size(&self) -> usize {
                2
            }
            fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
                self.0.completions_of(inv)
            }
            fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
                self.0.completions_among(inv, peers)
            }
        }
        let (a, b) = (ObjectId(0), ObjectId(1));
        let h = History::from_actions(vec![
            inv_on(a, 1, 3),
            inv_on(a, 2, 4),
            res_on(a, 1, true, 4),
            res_on(a, 2, true, 3),
            inv_on(b, 1, 5),
            inv_on(b, 2, 6),
            res_on(b, 1, true, 6),
            res_on(b, 2, true, 5),
        ]);
        let spec = Coupled(MiniExchanger(a), MiniExchanger(b));
        let outcome = check_cal_par_with(&h, &spec, &threads_options(4)).unwrap();
        assert!(outcome.verdict.is_cal(), "{:?}", outcome.verdict);
    }

    #[test]
    fn shared_budget_is_global() {
        let o = ObjectId(0);
        let h = History::from_actions(hard_history(o, 9, 1));
        let spec = MiniExchanger(o);
        let options = CheckOptions { max_nodes: 3, threads: 4, ..CheckOptions::default() };
        let outcome = check_cal_par_with(&h, &spec, &options).unwrap();
        assert_eq!(outcome.verdict, Verdict::ResourcesExhausted);
    }

    #[test]
    fn cancelled_token_interrupts_parallel_search() {
        let o = ObjectId(0);
        let token = CancelToken::new();
        token.cancel();
        let options = CheckOptions {
            cancel: Some(token),
            max_nodes: u64::MAX,
            memoize: false,
            threads: 4,
            ..CheckOptions::default()
        };
        let h = History::from_actions(hard_history(o, 13, 1));
        let outcome = check_cal_par_with(&h, &MiniExchanger(o), &options).unwrap();
        assert_eq!(
            outcome.verdict,
            Verdict::Interrupted { reason: crate::check::InterruptReason::Cancelled }
        );
    }

    #[test]
    fn empty_and_pending_only_histories_are_cal() {
        let o = ObjectId(0);
        let spec = MiniExchanger(o);
        let empty = History::new();
        assert!(check_cal_par_with(&empty, &spec, &threads_options(4))
            .unwrap()
            .verdict
            .is_cal());
        let pending = History::from_actions(vec![inv_on(o, 1, 3)]);
        let outcome = check_cal_par_with(&pending, &spec, &threads_options(4)).unwrap();
        assert!(outcome.verdict.is_cal());
    }

    #[test]
    fn sharded_memo_inserts_and_finds() {
        let memo: ShardedMemo<(u32, u32)> = ShardedMemo::with_shards(7);
        assert!(memo.is_empty());
        assert!(memo.insert((1, 2)));
        assert!(!memo.insert((1, 2)));
        assert!(memo.contains(&(1, 2)));
        assert!(!memo.contains(&(2, 1)));
        assert_eq!(memo.len(), 1);
    }
}
