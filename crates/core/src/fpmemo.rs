//! A lock-free, open-addressed fingerprint table for failed-state
//! memoization.
//!
//! [`FpMemo`] replaces the mutex-striped [`ShardedMemo`] on the parallel
//! hot path. It is a fixed-capacity, power-of-two array of slots probed
//! linearly from a hash-derived index. Each slot carries:
//!
//! - a `tag` word packing a 48-bit **fingerprint** of the key's hash with
//!   a 16-bit **generation** counter, published with a single atomic
//!   store;
//! - a pointer to a heap-boxed **verification key**, so that a probe
//!   that matches the fingerprint can confirm the full key with `Eq`.
//!
//! ## Why collisions are sound
//!
//! The table only ever answers "have we already *refuted* this state?".
//! A false **miss** (the state was inserted but the probe doesn't find
//! it — because the slot was evicted, the probe window was exhausted, or
//! the generation rolled) merely re-searches a refuted subtree: slower,
//! never wrong. A false **hit** would be unsound, which is why the
//! fingerprint alone is never trusted: every fingerprint match is
//! confirmed against the boxed key with a full `Eq` comparison before the
//! probe reports a hit. Two distinct states that collide on all 48
//! fingerprint bits therefore still compare unequal and degrade to a
//! miss.
//!
//! ## Memory reclamation
//!
//! Keys are published with `Box::into_raw` via an atomic `swap`; a
//! displaced key pointer is pushed onto a retire bin rather than freed,
//! and all outstanding boxes (live slots + bin) are dropped only in
//! [`Drop`]. Concurrent readers may therefore always dereference a
//! non-null key pointer they loaded — the pointee outlives the table's
//! every probe. This wastes at most one allocation per insertion, which
//! is bounded by the search's node budget.
//!
//! ## Bounded size, generation-tagged eviction
//!
//! When the insert count crosses a high-water mark the table bumps its
//! generation; slots tagged with an older generation become *stale* and
//! are reclaimable by subsequent inserts. Readers treat stale slots as
//! empty, so an eviction is just a (sound) forced miss for the evicted
//! states.
//!
//! [`ShardedMemo`]: crate::engine::ShardedMemo

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::obs::MEMO_SHARD_BUCKETS;

/// Tag value of a slot that has never been claimed.
const EMPTY: u64 = 0;
/// Tag value of a slot mid-publication: probes skip it, inserts move on.
const CLAIMED: u64 = u64::MAX;
/// Linear-probe window: an insert that finds no free or stale slot
/// within this many steps is dropped (a bounded table never blocks).
const PROBE_WINDOW: usize = 16;
/// Default capacity (slots). Must be a power of two.
const DEFAULT_CAPACITY: usize = 1 << 17;

/// Multiplier for fingerprint mixing (the 64-bit golden ratio, as in
/// Fibonacci hashing).
const FP_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Packs a 48-bit fingerprint and 16-bit generation into an occupied
/// tag. The low fingerprint bit is forced to 1 so an occupied tag can
/// never equal [`EMPTY`]; the generation is held below 0xFFFF so it can
/// never equal [`CLAIMED`]'s low half... and more simply, the whole word
/// can only be `u64::MAX` if the fingerprint half is all-ones *and* the
/// generation is 0xFFFF, which the modulus below rules out.
fn occupied_tag(fp: u64, generation: u64) -> u64 {
    ((fp | 1) << 16) | (generation % 0xFFFF)
}

struct Slot<K> {
    tag: AtomicU64,
    key: AtomicPtr<K>,
}

/// A bounded, lock-free set of refuted search states. See the module
/// docs for the design; the API mirrors what the engine's memo path
/// needs: [`contains`](FpMemo::contains), [`insert`](FpMemo::insert) and
/// a [`bucket_of`](FpMemo::bucket_of) used only for per-shard sink
/// attribution.
pub struct FpMemo<K> {
    slots: Box<[Slot<K>]>,
    mask: u64,
    /// Approximate number of live inserts this generation.
    count: AtomicUsize,
    /// Inserts allowed per generation before an eviction sweep.
    threshold: usize,
    generation: AtomicU64,
    evictions: AtomicU64,
    /// Keys displaced by a racing re-publication; freed on drop.
    retired: Mutex<Vec<*mut K>>,
}

// SAFETY: all shared mutation goes through atomics; the retire bin is
// mutex-guarded; boxed keys are only dropped in `Drop` (&mut self).
unsafe impl<K: Send + Sync> Send for FpMemo<K> {}
unsafe impl<K: Send + Sync> Sync for FpMemo<K> {}

impl<K> std::fmt::Debug for FpMemo<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpMemo")
            .field("capacity", &self.slots.len())
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Hash + Eq + Clone> FpMemo<K> {
    /// A table with the default capacity (2^17 slots).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A table with at least `capacity` slots (rounded up to a power of
    /// two, minimum 64).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(64);
        let slots = (0..cap)
            .map(|_| Slot { tag: AtomicU64::new(EMPTY), key: AtomicPtr::new(std::ptr::null_mut()) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FpMemo {
            slots,
            mask: (cap - 1) as u64,
            count: AtomicUsize::new(0),
            // Evict at 7/8 occupancy: linear probing degrades sharply
            // past that, and the window bound would start dropping most
            // inserts anyway.
            threshold: cap / 8 * 7,
            generation: AtomicU64::new(1),
            evictions: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    fn fingerprint(hash: u64) -> u64 {
        hash.wrapping_mul(FP_MIX) >> 16
    }

    /// True iff `key` was previously inserted and is still resident.
    ///
    /// A `false` may be a genuine miss *or* an evicted/raced entry; both
    /// are sound (the caller re-searches). A `true` is always exact: the
    /// fingerprint match is confirmed with a full `Eq` on the stored key.
    pub fn contains(&self, key: &K) -> bool {
        let hash = hash_of(key);
        let fp = Self::fingerprint(hash);
        let gen = self.generation.load(Ordering::Relaxed);
        let want = occupied_tag(fp, gen);
        let mut idx = hash & self.mask;
        for _ in 0..PROBE_WINDOW {
            let slot = &self.slots[idx as usize];
            // Acquire pairs with the Release tag store in `insert`,
            // making the key publication visible.
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == EMPTY {
                // Linear probing never leaves gaps within a probe
                // sequence of the current generation, so an EMPTY slot
                // ends the search. (Stale slots do NOT end it: the key
                // may have been inserted past them before the sweep.)
                return false;
            }
            if tag == want {
                let ptr = slot.key.load(Ordering::Acquire);
                if !ptr.is_null() {
                    // SAFETY: non-null key pointers are only ever
                    // published from `Box::into_raw` and only freed in
                    // `Drop`, so the pointee is live for `&self`'s
                    // lifetime.
                    if unsafe { &*ptr } == key {
                        return true;
                    }
                }
            }
            idx = (idx + 1) & self.mask;
        }
        false
    }

    /// Records `key` as refuted. Returns `true` if a slot was claimed
    /// (`false` when the probe window was full and the insert dropped —
    /// sound: dropping an insert only costs a future re-search).
    pub fn insert(&self, key: &K) -> bool {
        if self.count.load(Ordering::Relaxed) >= self.threshold {
            self.evict();
        }
        let hash = hash_of(key);
        let fp = Self::fingerprint(hash);
        let gen = self.generation.load(Ordering::Relaxed);
        let want = occupied_tag(fp, gen);
        let mut idx = hash & self.mask;
        for _ in 0..PROBE_WINDOW {
            let slot = &self.slots[idx as usize];
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == want {
                // Possibly already present (another worker refuted the
                // same state); confirm to avoid wasting a slot.
                let ptr = slot.key.load(Ordering::Acquire);
                // SAFETY: as in `contains`.
                if !ptr.is_null() && unsafe { &*ptr } == key {
                    return true;
                }
            }
            let claimable = tag == EMPTY || (tag != CLAIMED && tag != want && Self::is_stale(tag, gen));
            if claimable
                && slot
                    .tag
                    .compare_exchange(tag, CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                let boxed = Box::into_raw(Box::new(key.clone()));
                let old = slot.key.swap(boxed, Ordering::AcqRel);
                if !old.is_null() {
                    // A previous occupant's key: retire it rather than
                    // freeing, a reader may still hold the pointer.
                    match self.retired.lock() {
                        Ok(mut bin) => bin.push(old),
                        Err(poisoned) => poisoned.into_inner().push(old),
                    }
                }
                // Release publishes the key store above to Acquire
                // readers of the tag.
                slot.tag.store(want, Ordering::Release);
                self.count.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            idx = (idx + 1) & self.mask;
        }
        false
    }

    /// A slot whose generation half differs from the current generation
    /// belongs to an evicted epoch.
    fn is_stale(tag: u64, gen: u64) -> bool {
        tag != EMPTY && tag != CLAIMED && (tag & 0xFFFF) != (gen % 0xFFFF)
    }

    /// Bumps the generation, logically evicting every resident entry.
    /// Exactly one racing caller wins the CAS and resets the count.
    fn evict(&self) {
        let gen = self.generation.load(Ordering::Relaxed);
        if self
            .generation
            .compare_exchange(gen, gen + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.count.store(0, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Approximate number of entries inserted in the current generation.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing has been inserted this generation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of generation sweeps so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The observability bucket a key falls into, for per-shard sink
    /// attribution (`StatsSink::on_memo_hit(shard)` and friends). Stable
    /// per key; in `0..MEMO_SHARD_BUCKETS`.
    pub fn bucket_of(&self, key: &K) -> usize {
        (hash_of(key) as usize) & (MEMO_SHARD_BUCKETS - 1)
    }
}

impl<K: Hash + Eq + Clone> Default for FpMemo<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> Drop for FpMemo<K> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let ptr = *slot.key.get_mut();
            if !ptr.is_null() {
                // SAFETY: published from Box::into_raw, freed exactly
                // once (here or from the retire bin, never both — the
                // bin only holds pointers swapped *out* of slots).
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
        let bin = std::mem::take(self.retired.get_mut().unwrap_or_else(|p| p.into_inner()));
        for ptr in bin {
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_then_contains() {
        let memo: FpMemo<(u64, u64)> = FpMemo::with_capacity(256);
        assert!(!memo.contains(&(1, 2)));
        assert!(memo.insert(&(1, 2)));
        assert!(memo.contains(&(1, 2)));
        assert!(!memo.contains(&(2, 1)));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let memo: FpMemo<u64> = FpMemo::with_capacity(256);
        assert!(memo.insert(&7));
        let before = memo.len();
        assert!(memo.insert(&7));
        assert_eq!(memo.len(), before, "re-insert claims no new slot");
    }

    /// A key type whose `Hash` deliberately collides everywhere but
    /// whose `Eq` still distinguishes: a full-table fingerprint
    /// collision must degrade to a miss, never a false hit.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Colliding(u64);
    impl Hash for Colliding {
        fn hash<H: Hasher>(&self, state: &mut H) {
            0u64.hash(state);
        }
    }

    #[test]
    fn total_hash_collision_never_false_hits() {
        let memo: FpMemo<Colliding> = FpMemo::with_capacity(256);
        for i in 0..PROBE_WINDOW as u64 + 4 {
            memo.insert(&Colliding(i));
        }
        // Everything shares one probe sequence; only genuinely inserted
        // keys within the window may report hits, and no *other* key may.
        for i in 0..64u64 {
            if memo.contains(&Colliding(i)) {
                assert!(i < PROBE_WINDOW as u64 + 4, "false hit for {i}");
            }
        }
        assert!(!memo.contains(&Colliding(999)));
    }

    #[test]
    fn eviction_resets_and_counts() {
        let memo: FpMemo<u64> = FpMemo::with_capacity(64);
        // threshold = 64/8*7 = 56; push past it.
        for i in 0..200u64 {
            memo.insert(&i);
        }
        assert!(memo.evictions() > 0, "high-water mark must trigger a sweep");
        // Table still functions after eviction.
        memo.insert(&1_000_000);
        assert!(memo.contains(&1_000_000));
    }

    #[test]
    fn concurrent_insert_contains_is_consistent() {
        let memo: Arc<FpMemo<u64>> = Arc::new(FpMemo::with_capacity(1 << 12));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let memo = Arc::clone(&memo);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = t * 10_000 + i;
                        memo.insert(&k);
                        assert!(
                            memo.contains(&k) || memo.evictions() > 0,
                            "inserted key missing without an eviction"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // No cross-contamination: keys never inserted are never present.
        for k in [99_999u64, 123_456, 777_777] {
            assert!(!memo.contains(&k));
        }
    }

    #[test]
    fn bucket_is_stable_and_bounded() {
        let memo: FpMemo<u64> = FpMemo::new();
        for k in 0..100u64 {
            let b = memo.bucket_of(&k);
            assert!(b < MEMO_SHARD_BUCKETS);
            assert_eq!(b, memo.bucket_of(&k));
        }
    }
}
