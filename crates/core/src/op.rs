//! Operations: matched invocation/response pairs (Def. 4 of the paper).

use std::fmt;

use crate::action::Action;
use crate::ids::{Method, ObjectId, ThreadId, Value};

/// An operation `(t, f(n) ▷ n')` of a concurrent object — the pairing of an
/// invocation `(t, inv o.f(n))` with its matching response
/// `(t, res o.f ▷ n')` (Def. 4).
///
/// # Examples
///
/// ```
/// use cal_core::{Method, ObjectId, Operation, ThreadId, Value};
/// let op = Operation::new(
///     ThreadId(1),
///     ObjectId(0),
///     Method("exchange"),
///     Value::Int(3),
///     Value::Pair(true, 4),
/// );
/// assert_eq!(op.to_string(), "(t1, exchange(3) ▷ (true,4))");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Operation {
    /// The thread performing the operation.
    pub thread: ThreadId,
    /// The object the operation acts on.
    pub object: ObjectId,
    /// The invoked method.
    pub method: Method,
    /// The invocation argument.
    pub arg: Value,
    /// The response value.
    pub ret: Value,
}

impl Operation {
    /// Creates an operation from its five components.
    pub fn new(
        thread: ThreadId,
        object: ObjectId,
        method: Method,
        arg: Value,
        ret: Value,
    ) -> Self {
        Operation { thread, object, method, arg, ret }
    }

    /// The invocation action of this operation.
    ///
    /// # Examples
    ///
    /// ```
    /// use cal_core::{Method, ObjectId, Operation, ThreadId, Value};
    /// let op = Operation::new(ThreadId(0), ObjectId(0), Method("pop"), Value::Unit,
    ///                         Value::Pair(true, 5));
    /// assert!(op.invocation().is_invoke());
    /// ```
    pub fn invocation(&self) -> Action {
        Action::invoke(self.thread, self.object, self.method, self.arg)
    }

    /// The response action of this operation.
    pub fn response(&self) -> Action {
        Action::response(self.thread, self.object, self.method, self.ret)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}({}) ▷ {})", self.thread, self.method, self.arg, self.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> Operation {
        Operation::new(ThreadId(0), ObjectId(3), Method("pop"), Value::Unit, Value::Pair(true, 8))
    }

    #[test]
    fn round_trip_actions() {
        let o = op();
        let inv = o.invocation();
        let res = o.response();
        assert_eq!(inv.thread(), o.thread);
        assert_eq!(inv.object(), o.object);
        assert_eq!(inv.arg(), Some(o.arg));
        assert_eq!(res.ret(), Some(o.ret));
    }

    #[test]
    fn display() {
        assert_eq!(op().to_string(), "(t0, pop(()) ▷ (true,8))");
    }

    #[test]
    fn ordering_is_total() {
        let a = op();
        let mut b = op();
        b.thread = ThreadId(1);
        assert!(a < b);
    }
}
