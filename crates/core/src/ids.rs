//! Identifiers for threads, objects and methods, and the value domain.
//!
//! The paper (Def. 1) assumes infinite sets of object names `o ∈ O`, method
//! names `f ∈ F` and thread identifiers `t ∈ T`. We represent threads and
//! objects as cheap `Copy` newtypes over `u32` and methods as interned
//! `&'static str` (method names are static program text in every client).

use std::fmt;

/// Identifier of a thread, `t ∈ T` in the paper.
///
/// # Examples
///
/// ```
/// use cal_core::ThreadId;
/// let t = ThreadId(0);
/// assert_eq!(t.to_string(), "t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(raw: u32) -> Self {
        ThreadId(raw)
    }
}

/// Identifier of a concurrent object, `o ∈ O` in the paper.
///
/// Objects are allocated by clients; related objects (e.g. the exchangers
/// `E[0..K]` inside an elimination array `AR`) are distinguished purely by
/// their ids, and [`crate::compose::TraceMap`] implementations decide which
/// ids count as subobjects of which.
///
/// # Examples
///
/// ```
/// use cal_core::ObjectId;
/// let exchanger = ObjectId(7);
/// assert_eq!(exchanger.to_string(), "o7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(raw: u32) -> Self {
        ObjectId(raw)
    }
}

/// A method name, `f ∈ F` in the paper.
///
/// # Examples
///
/// ```
/// use cal_core::Method;
/// const EXCHANGE: Method = Method("exchange");
/// assert_eq!(EXCHANGE.to_string(), "exchange");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Method(pub &'static str);

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// The value domain for method arguments and return values.
///
/// The paper's examples only need integers, booleans and `(bool, int)`
/// pairs (the return type of `exchange` and `pop`), so the domain is a
/// small `Copy` enum rather than a recursive tree.
///
/// # Examples
///
/// ```
/// use cal_core::Value;
/// let ret = Value::Pair(true, 42);
/// assert_eq!(ret.to_string(), "(true,42)");
/// assert_eq!(Value::Unit.to_string(), "()");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// No value (e.g. the argument of `pop()`).
    #[default]
    Unit,
    /// A boolean (e.g. the return of `push`).
    Bool(bool),
    /// An integer (e.g. the argument of `push` and `exchange`).
    Int(i64),
    /// A `(bool, int)` pair (e.g. the return of `exchange` and `pop`).
    Pair(bool, i64),
}

impl Value {
    /// Returns the integer payload if this is [`Value::Int`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cal_core::Value;
    /// assert_eq!(Value::Int(3).as_int(), Some(3));
    /// assert_eq!(Value::Unit.as_int(), None);
    /// ```
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is [`Value::Bool`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cal_core::Value;
    /// assert_eq!(Value::Bool(true).as_bool(), Some(true));
    /// assert_eq!(Value::Int(1).as_bool(), None);
    /// ```
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the `(bool, int)` payload if this is [`Value::Pair`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cal_core::Value;
    /// assert_eq!(Value::Pair(false, 7).as_pair(), Some((false, 7)));
    /// assert_eq!(Value::Bool(false).as_pair(), None);
    /// ```
    pub fn as_pair(self) -> Option<(bool, i64)> {
        match self {
            Value::Pair(b, n) => Some((b, n)),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<(bool, i64)> for Value {
    fn from((b, n): (bool, i64)) -> Self {
        Value::Pair(b, n)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Pair(b, n) => write!(f, "({b},{n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_display_and_order() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert!(ThreadId(1) < ThreadId(2));
        assert_eq!(ThreadId::from(5), ThreadId(5));
    }

    #[test]
    fn object_id_display_and_order() {
        assert_eq!(ObjectId(0).to_string(), "o0");
        assert!(ObjectId(0) < ObjectId(9));
        assert_eq!(ObjectId::from(5), ObjectId(5));
    }

    #[test]
    fn method_display() {
        assert_eq!(Method("push").to_string(), "push");
        assert_eq!(Method("push"), Method("push"));
        assert_ne!(Method("push"), Method("pop"));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(-4).as_int(), Some(-4));
        assert_eq!(Value::Pair(true, 1).as_pair(), Some((true, 1)));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::Int(0).as_pair(), None);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from((false, 2)), Value::Pair(false, 2));
        assert_eq!(Value::from(()), Value::Unit);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Pair(false, 0).to_string(), "(false,0)");
    }

    #[test]
    fn value_default_is_unit() {
        assert_eq!(Value::default(), Value::Unit);
    }
}
