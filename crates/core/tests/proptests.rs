//! Property-based tests of the core data structures and invariants.

use cal_core::bitset::BitSet;
use cal_core::gen::{interleave, render, render_windowed};
use cal_core::text::{format_history, format_trace, parse_history, parse_trace};
use cal_core::{Action, CaElement, CaTrace, History, Method, ObjectId, Operation, ThreadId, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(Value::Int),
        (any::<bool>(), -100i64..100).prop_map(|(b, n)| Value::Pair(b, n)),
    ]
}

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method("exchange")),
        Just(Method("push")),
        Just(Method("pop")),
        Just(Method("put")),
    ]
}

/// A per-thread sequential action list: alternating inv/res on one object.
fn arb_thread_actions(t: u32) -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec((arb_method(), arb_value(), arb_value(), any::<bool>()), 0..5).prop_map(
        move |ops| {
            let mut out = Vec::new();
            let n = ops.len();
            for (i, (m, arg, ret, complete)) in ops.into_iter().enumerate() {
                out.push(Action::invoke(ThreadId(t), ObjectId(0), m, arg));
                // Only the final operation may stay pending.
                if complete || i + 1 < n {
                    out.push(Action::response(ThreadId(t), ObjectId(0), m, ret));
                }
            }
            out
        },
    )
}

fn arb_history() -> impl Strategy<Value = History> {
    (prop::collection::vec(arb_thread_actions(0), 1..4), any::<u64>()).prop_map(
        |(mut lists, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            // Re-thread the lists so thread ids are distinct.
            for (t, list) in lists.iter_mut().enumerate() {
                for a in list.iter_mut() {
                    let rethreaded = match (a.is_invoke(), a.arg(), a.ret()) {
                        (true, Some(arg), _) => {
                            Action::invoke(ThreadId(t as u32), a.object(), a.method(), arg)
                        }
                        (_, _, Some(ret)) => {
                            Action::response(ThreadId(t as u32), a.object(), a.method(), ret)
                        }
                        _ => unreachable!(),
                    };
                    *a = rethreaded;
                }
            }
            let mut rng = StdRng::seed_from_u64(seed);
            interleave(&lists, &mut rng)
        },
    )
}

fn arb_trace() -> impl Strategy<Value = CaTrace> {
    prop::collection::vec(
        (0u32..4, arb_method(), arb_value(), arb_value(), any::<bool>(), arb_value()),
        0..8,
    )
    .prop_map(|specs| {
        let mut elements = Vec::new();
        for (t, m, arg, ret, pair, arg2) in specs {
            let a = Operation::new(ThreadId(t), ObjectId(0), m, arg, ret);
            if pair {
                let b = Operation::new(ThreadId(t + 10), ObjectId(0), m, arg2, ret);
                elements.push(CaElement::pair(a, b).expect("distinct threads"));
            } else {
                elements.push(CaElement::singleton(a));
            }
        }
        CaTrace::from_elements(elements)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interleaved_histories_are_well_formed(h in arb_history()) {
        prop_assert!(h.is_well_formed());
        // Per-thread projections are sequential.
        for t in h.threads() {
            prop_assert!(h.project_thread(t).is_sequential());
        }
    }

    #[test]
    fn spans_pair_invocations_and_responses(h in arb_history()) {
        let spans = h.spans();
        let invocations = h.actions().iter().filter(|a| a.is_invoke()).count();
        let responses = h.actions().iter().filter(|a| a.is_response()).count();
        prop_assert_eq!(spans.len(), invocations);
        prop_assert_eq!(spans.iter().filter(|s| s.is_complete()).count(), responses);
        // Real-time order is irreflexive and antisymmetric.
        for a in &spans {
            prop_assert!(!History::spans_precede(a, a));
            for b in &spans {
                if History::spans_precede(a, b) {
                    prop_assert!(!History::spans_precede(b, a));
                }
            }
        }
    }

    #[test]
    fn completions_are_complete_and_bounded(h in arb_history()) {
        let pending = h.spans().iter().filter(|s| !s.is_complete()).count();
        let completions = h.completions(|_| vec![Value::Unit]);
        prop_assert_eq!(completions.len(), 2usize.pow(pending as u32));
        for c in completions {
            prop_assert!(c.is_complete());
        }
    }

    #[test]
    fn history_text_round_trip(h in arb_history()) {
        let text = format_history(&h);
        let parsed = parse_history(&text).expect("formatter output parses");
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn trace_text_round_trip(t in arb_trace()) {
        let text = format_trace(&t);
        let parsed = parse_trace(&text).expect("formatter output parses");
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn trace_projections_partition_objects(t in arb_trace()) {
        // Projection to the only object is the identity here.
        prop_assert_eq!(t.project_object(ObjectId(0)), t.clone());
        prop_assert!(t.project_object(ObjectId(9)).is_empty());
        // Thread projections keep whole elements.
        for el in t.elements() {
            for op in el.ops() {
                let proj = t.project_thread(op.thread);
                prop_assert!(proj.elements().contains(el));
            }
        }
    }

    #[test]
    fn windowed_render_always_agrees(t in arb_trace(), w in 1usize..6) {
        let h = render_windowed(&t, w);
        prop_assert!(h.is_well_formed());
        prop_assert!(cal_core::agree::agrees_bool(&h, &t));
        // The strict render agrees too.
        prop_assert!(cal_core::agree::agrees_bool(&render(&t), &t));
    }

    #[test]
    fn bitset_models_a_set(ops in prop::collection::vec((0usize..64, any::<bool>()), 0..40)) {
        let mut bs = BitSet::new(64);
        let mut reference = std::collections::BTreeSet::new();
        for (i, insert) in ops {
            if insert {
                bs.insert(i);
                reference.insert(i);
            } else {
                bs.remove(i);
                reference.remove(&i);
            }
        }
        prop_assert_eq!(bs.len(), reference.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
    }
}
