//! Fault plans, chaos profiles and the seeded RNG.
//!
//! All randomness in the harness flows from [`SplitMix64`] streams seeded
//! by the run's `u64` seed, so a run is exactly as reproducible as its
//! scheduling model allows: bit-for-bit in deterministic mode, best-effort
//! in stress mode.

/// The SplitMix64 generator (Steele, Lea & Flood): tiny, seedable, and
/// with a well-mixed single-word state — the whole harness draws from it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// A sub-stream for worker `index`, decorrelated from its siblings.
    pub fn for_worker(seed: u64, index: usize) -> Self {
        let mut base = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15u64.rotate_left(index as u32));
        base.next_u64(); // warm up past small seeds
        base
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound > 0`).
    pub fn index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// A biased coin: true with probability `p_256 / 256`.
    pub fn chance(&mut self, p_256: u8) -> bool {
        (self.next_u64() & 0xFF) < u64::from(p_256)
    }
}

/// Per-site fault probabilities (in 1/256 units) and magnitudes.
///
/// Which knobs matter depends on the scheduling model: in deterministic
/// (token-passing) mode only the scheduling knobs (`switch_prob`,
/// starvation) and the semantic faults (`cas_fail_prob`, `abandon_prob`)
/// have any effect, because exactly one thread runs at a time and delays
/// cannot change the interleaving. Stress mode uses all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// P(switch to another thread) at each instrumented point
    /// (deterministic mode).
    pub switch_prob: u8,
    /// P(inject a delay) at each instrumented point (stress mode).
    pub delay_prob: u8,
    /// Upper bound on an injected delay, in `spin_loop` hints.
    pub max_delay_spins: u32,
    /// P(yield the CPU) at each instrumented point (stress mode) —
    /// simulated preemption.
    pub yield_prob: u8,
    /// P(an instrumented CAS is forced to act as spuriously failed).
    pub cas_fail_prob: u8,
    /// P(a worker abandons mid-operation, leaving a pending invocation
    /// and never running another op), evaluated once per operation.
    pub abandon_prob: u8,
    /// Starve the highest-indexed worker: in deterministic mode it is
    /// picked with reduced probability; in stress mode its delays are
    /// eight times longer.
    pub starve_last: bool,
}

/// Named fault-plan presets, selectable as `--chaos <profile>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Scheduling noise only: switches and delays, no semantic faults.
    Light,
    /// Everything on: frequent switches, spurious CAS failures, and
    /// mid-operation abandonment.
    Heavy,
    /// Biased scheduling: one worker is starved of CPU while the others
    /// hammer the object.
    Starvation,
}

impl Profile {
    /// The fault plan this profile stands for.
    pub fn plan(self) -> FaultPlan {
        match self {
            Profile::Light => FaultPlan {
                switch_prob: 96,
                delay_prob: 48,
                max_delay_spins: 64,
                yield_prob: 24,
                cas_fail_prob: 0,
                abandon_prob: 0,
                starve_last: false,
            },
            Profile::Heavy => FaultPlan {
                switch_prob: 144,
                delay_prob: 96,
                max_delay_spins: 256,
                yield_prob: 48,
                cas_fail_prob: 48,
                abandon_prob: 16,
                starve_last: false,
            },
            Profile::Starvation => FaultPlan {
                switch_prob: 128,
                delay_prob: 64,
                max_delay_spins: 128,
                yield_prob: 32,
                cas_fail_prob: 16,
                abandon_prob: 8,
                starve_last: true,
            },
        }
    }

    /// The profile's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Light => "light",
            Profile::Heavy => "heavy",
            Profile::Starvation => "starvation",
        }
    }

    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "light" => Some(Profile::Light),
            "heavy" => Some(Profile::Heavy),
            "starvation" => Some(Profile::Starvation),
            _ => None,
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn worker_streams_decorrelate() {
        let mut w0 = SplitMix64::for_worker(7, 0);
        let mut w1 = SplitMix64::for_worker(7, 1);
        let same = (0..64).filter(|_| w0.next_u64() == w1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(1);
        assert!((0..100).all(|_| !r.chance(0)));
        // p = 255/256 can miss, but not 100 times in a row.
        assert!((0..100).any(|_| r.chance(255)));
    }

    #[test]
    fn profiles_parse_round_trip() {
        for p in [Profile::Light, Profile::Heavy, Profile::Starvation] {
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
        assert_eq!(Profile::parse("nope"), None);
    }

    #[test]
    fn heavy_enables_semantic_faults() {
        let plan = Profile::Heavy.plan();
        assert!(plan.cas_fail_prob > 0 && plan.abandon_prob > 0);
        assert_eq!(Profile::Light.plan().cas_fail_prob, 0);
    }
}
