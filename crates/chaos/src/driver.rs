//! The chaos run driver: builds a live recorded object, runs a seeded
//! workload against it under an injector, harvests the history, and pipes
//! it into the deadline-aware CAL checker.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use cal_core::check::{check_cal_with, CheckError, CheckOptions, CheckOutcome, CheckStats, Verdict};
use cal_core::dsl::SpecDef;
use cal_core::par::check_cal_par_with;
use cal_core::spec::{CaSpec, SeqAsCa};
use cal_core::{History, ObjectId, ThreadId};
use cal_objects::hooks;
use cal_objects::recorded::{
    RecordedDualStack, RecordedEliminationStack, RecordedExchanger, RecordedSyncQueue,
    RecordedTreiberStack,
};
use cal_specs::dual_stack::DualStackSpec;
use cal_specs::exchanger::ExchangerSpec;
use cal_specs::stack::StackSpec;
use cal_specs::sync_queue::SyncQueueSpec;
use cal_core::Value;
use cal_specs::vocab::{EXCHANGE, POP, PUSH, PUT, TAKE};

use crate::faults::{Profile, SplitMix64};
use crate::injector::{enter_worker, Scheduler, StressInjector};
use crate::report::{FailureClass, FailureReport};
use crate::shrink;

/// The hooks registry is process-global, so runs must not overlap; every
/// [`run_once`] serializes on this lock.
static RUN_LOCK: Mutex<()> = Mutex::new(());

fn run_lock() -> MutexGuard<'static, ()> {
    RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Which live object a run targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// The wait-free exchanger of Fig. 1 ([`RecordedExchanger`]).
    Exchanger,
    /// The deliberately broken exchanger that hands the same value to
    /// both sides — the planted bug the harness must catch.
    BuggyExchanger,
    /// The retrying Treiber stack ([`RecordedTreiberStack`]).
    TreiberStack,
    /// Hendler et al.'s elimination stack
    /// ([`RecordedEliminationStack`]).
    ElimStack,
    /// The Scherer–Scott dual stack ([`RecordedDualStack`]).
    DualStack,
    /// The exchanger-based synchronous queue ([`RecordedSyncQueue`]).
    SyncQueue,
}

impl TargetKind {
    /// All checkable targets, in CLI order.
    pub const ALL: [TargetKind; 6] = [
        TargetKind::Exchanger,
        TargetKind::BuggyExchanger,
        TargetKind::TreiberStack,
        TargetKind::ElimStack,
        TargetKind::DualStack,
        TargetKind::SyncQueue,
    ];

    /// The target's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Exchanger => "exchanger",
            TargetKind::BuggyExchanger => "buggy-exchanger",
            TargetKind::TreiberStack => "treiber-stack",
            TargetKind::ElimStack => "elim-stack",
            TargetKind::DualStack => "dual-stack",
            TargetKind::SyncQueue => "sync-queue",
        }
    }

    /// Parses a CLI target name.
    pub fn parse(s: &str) -> Option<Self> {
        TargetKind::ALL.into_iter().find(|t| t.name() == s)
    }
}

impl std::fmt::Display for TargetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the workload's threads are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Cooperative token-passing: one virtual thread at a time, switches
    /// only at chaos points, all decisions seeded — bit-for-bit
    /// reproducible.
    Deterministic,
    /// Real OS-thread parallelism with seeded perturbation streams — not
    /// bit-for-bit reproducible, but exercises true data races.
    Stress,
}

impl Mode {
    /// The mode's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Deterministic => "deterministic",
            Mode::Stress => "stress",
        }
    }

    /// Parses a CLI mode name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "deterministic" => Some(Mode::Deterministic),
            "stress" => Some(Mode::Stress),
            _ => None,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified chaos run: everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The seed: the run's whole identity in deterministic mode.
    pub seed: u64,
    /// Worker (virtual) threads.
    pub threads: usize,
    /// Operations per worker.
    pub ops_per_thread: usize,
    /// The object under test.
    pub target: TargetKind,
    /// The fault profile.
    pub profile: Profile,
    /// The scheduling model.
    pub mode: Mode,
    /// Wall-clock budget handed to the checker.
    pub deadline: Option<Duration>,
    /// Node budget handed to the checker.
    pub max_nodes: u64,
    /// Worker threads for the checker (not the workload); `> 1` routes the
    /// harvested history through the parallel checker.
    pub check_threads: usize,
    /// A runtime-loaded `.cal` specification to check harvested histories
    /// against instead of the target's built-in spec. The spec is
    /// instantiated on the run's single object; compilation happens
    /// before any run starts (the `chaos-soak` exit-3 contract).
    pub spec: Option<Arc<SpecDef>>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0,
            threads: 3,
            ops_per_thread: 5,
            target: TargetKind::Exchanger,
            profile: Profile::Heavy,
            mode: Mode::Deterministic,
            deadline: Some(Duration::from_secs(2)),
            max_nodes: 2_000_000,
            check_threads: 1,
            spec: None,
        }
    }
}

impl RunConfig {
    /// The checker options this config implies.
    pub fn check_options(&self) -> CheckOptions {
        CheckOptions {
            max_nodes: self.max_nodes,
            memoize: true,
            deadline: self.deadline,
            threads: self.check_threads,
            ..CheckOptions::default()
        }
    }
}

/// How a single chaos run ended.
#[derive(Debug, Clone)]
pub enum ChaosVerdict {
    /// The harvested history satisfies its specification.
    Passed(CheckStats),
    /// The history violates the specification — a bug, with the witness
    /// that there is none.
    Violation(CheckStats),
    /// The checker stopped without deciding (budget or deadline); the
    /// string names the reason.
    Undecided(String, CheckStats),
    /// The checker itself failed (ill-formed history, panicking spec).
    CheckerError(String),
}

impl ChaosVerdict {
    /// The failure class, or `None` if the run passed.
    pub fn class(&self) -> Option<FailureClass> {
        match self {
            ChaosVerdict::Passed(_) => None,
            ChaosVerdict::Violation(_) => Some(FailureClass::Violation),
            ChaosVerdict::Undecided(..) => Some(FailureClass::Undecided),
            ChaosVerdict::CheckerError(_) => Some(FailureClass::CheckerError),
        }
    }

    /// The checker statistics for this run, when the check ran at all.
    pub fn stats(&self) -> Option<&CheckStats> {
        match self {
            ChaosVerdict::Passed(s)
            | ChaosVerdict::Violation(s)
            | ChaosVerdict::Undecided(_, s) => Some(s),
            ChaosVerdict::CheckerError(_) => None,
        }
    }
}

impl std::fmt::Display for ChaosVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosVerdict::Passed(s) => write!(f, "passed ({} nodes)", s.nodes),
            ChaosVerdict::Violation(s) => {
                write!(f, "VIOLATION: history is not explainable ({} nodes searched)", s.nodes)
            }
            ChaosVerdict::Undecided(why, s) => {
                write!(f, "undecided: {why} ({} nodes searched)", s.nodes)
            }
            ChaosVerdict::CheckerError(e) => write!(f, "checker error: {e}"),
        }
    }
}

/// A run's harvested history and check result.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The exact configuration that produced this outcome.
    pub config: RunConfig,
    /// The recorded client-visible history.
    pub history: History,
    /// The checker's verdict on it.
    pub verdict: ChaosVerdict,
}

/// The object every run talks to, behind one op vocabulary.
enum LiveTarget {
    Exchanger(RecordedExchanger),
    Treiber(RecordedTreiberStack),
    Elim(RecordedEliminationStack),
    Dual(RecordedDualStack),
    Sync(RecordedSyncQueue),
}

const OBJ: ObjectId = ObjectId(0);
/// Spin budgets are kept tiny: chaos points, not spinning, provide the
/// waiting windows, and small budgets keep deterministic runs short.
const SPIN: usize = 6;

impl LiveTarget {
    fn build(kind: TargetKind) -> Self {
        match kind {
            TargetKind::Exchanger => LiveTarget::Exchanger(RecordedExchanger::new(OBJ)),
            TargetKind::BuggyExchanger => {
                LiveTarget::Exchanger(RecordedExchanger::new_misdelivering(OBJ))
            }
            TargetKind::TreiberStack => LiveTarget::Treiber(RecordedTreiberStack::new(OBJ)),
            TargetKind::ElimStack => LiveTarget::Elim(RecordedEliminationStack::new(OBJ, 2, SPIN)),
            TargetKind::DualStack => LiveTarget::Dual(RecordedDualStack::new(OBJ)),
            TargetKind::SyncQueue => LiveTarget::Sync(RecordedSyncQueue::new(OBJ, SPIN)),
        }
    }

    /// Runs (or, if `abandon`, merely records the invocation of) worker
    /// `t`'s `i`-th operation. The op shape depends only on `(rng, t, i)`
    /// so an abandoned op consumes the same randomness as a real one.
    fn op(&self, t: ThreadId, i: usize, rng: &mut SplitMix64, abandon: bool) {
        // A value unique to (worker, op): misdelivery and duplication
        // bugs become visible in the history.
        let v = (t.0 as i64) * 1_000_000 + i as i64;
        match self {
            LiveTarget::Exchanger(e) => {
                if abandon {
                    e.recorder().invoke(t, OBJ, EXCHANGE, Value::Int(v));
                } else {
                    e.exchange(t, v, SPIN + rng.index(SPIN));
                }
            }
            LiveTarget::Treiber(s) => {
                if rng.chance(128) {
                    if abandon {
                        s.recorder().invoke(t, OBJ, PUSH, Value::Int(v));
                    } else {
                        s.push(t, v);
                    }
                } else if abandon {
                    s.recorder().invoke(t, OBJ, POP, Value::Unit);
                } else {
                    s.pop(t);
                }
            }
            LiveTarget::Elim(s) => {
                if rng.chance(128) {
                    if abandon {
                        s.recorder().invoke(t, OBJ, PUSH, Value::Int(v));
                    } else {
                        s.push(t, v);
                    }
                } else if abandon {
                    s.recorder().invoke(t, OBJ, POP, Value::Unit);
                } else {
                    s.try_pop(t, 1 + rng.index(3));
                }
            }
            LiveTarget::Dual(s) => {
                if rng.chance(128) {
                    if abandon {
                        s.recorder().invoke(t, OBJ, PUSH, Value::Int(v));
                    } else {
                        s.push(t, v);
                    }
                } else if abandon {
                    s.recorder().invoke(t, OBJ, POP, Value::Unit);
                } else {
                    s.try_pop(t, 1 + rng.index(3));
                }
            }
            LiveTarget::Sync(q) => {
                if rng.chance(128) {
                    if abandon {
                        q.recorder().invoke(t, OBJ, PUT, Value::Int(v));
                    } else {
                        q.try_put(t, v, 1 + rng.index(3));
                    }
                } else if abandon {
                    q.recorder().invoke(t, OBJ, TAKE, Value::Unit);
                } else {
                    q.try_take(t, 1 + rng.index(3));
                }
            }
        }
    }

    fn history(&self) -> History {
        match self {
            LiveTarget::Exchanger(e) => e.recorder().history(),
            LiveTarget::Treiber(s) => s.recorder().history(),
            LiveTarget::Elim(s) => s.recorder().history(),
            LiveTarget::Dual(s) => s.recorder().history(),
            LiveTarget::Sync(q) => q.recorder().history(),
        }
    }

    fn check(&self, h: &History, options: CheckOptions) -> Result<CheckOutcome, CheckError> {
        match self {
            LiveTarget::Exchanger(_) => dispatch(h, &ExchangerSpec::new(OBJ), &options),
            LiveTarget::Treiber(_) => {
                dispatch(h, &SeqAsCa::new(StackSpec::total(OBJ)), &options)
            }
            LiveTarget::Elim(_) => {
                dispatch(h, &SeqAsCa::new(StackSpec::failing(OBJ)), &options)
            }
            LiveTarget::Dual(_) => dispatch(h, &DualStackSpec::with_timeouts(OBJ), &options),
            LiveTarget::Sync(_) => dispatch(h, &SyncQueueSpec::new(OBJ), &options),
        }
    }
}

/// Routes a check through the parallel checker when the config asks for
/// more than one checker thread.
fn dispatch<S>(h: &History, spec: &S, options: &CheckOptions) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    if options.threads > 1 {
        check_cal_par_with(h, spec, options)
    } else {
        check_cal_with(h, spec, options)
    }
}

/// Runs one seeded chaos workload and checks the harvested history.
///
/// In [`Mode::Deterministic`] the outcome — fault schedule, interleaving
/// and recorded history — is a pure function of `config` (same seed ⇒
/// same bits). Runs serialize on a process-global lock because the hook
/// registry is global.
pub fn run_once(config: &RunConfig) -> RunOutcome {
    let _serial = run_lock();
    let target = LiveTarget::build(config.target);
    let plan = config.profile.plan();

    match config.mode {
        Mode::Deterministic => {
            let sched = Scheduler::new(config.threads, config.seed, plan);
            let _hooks = hooks::install(Arc::clone(&sched) as Arc<dyn hooks::ChaosHooks>);
            std::thread::scope(|scope| {
                for w in 0..config.threads {
                    let sched = &sched;
                    let target = &target;
                    scope.spawn(move || {
                        let _id = enter_worker(w, config.seed);
                        let _reg = hooks::register_current_thread();
                        let mut rng = SplitMix64::for_worker(config.seed, w);
                        sched.wait_for_turn(w);
                        for i in 0..config.ops_per_thread {
                            let abandon = plan.abandon_prob > 0 && rng.chance(plan.abandon_prob);
                            target.op(ThreadId(w as u32), i, &mut rng, abandon);
                            if abandon {
                                // The worker dies mid-operation: its
                                // invocation stays pending forever.
                                break;
                            }
                        }
                        sched.finish(w);
                    });
                }
            });
        }
        Mode::Stress => {
            let inj = StressInjector::new(config.threads, plan);
            let _hooks = hooks::install(inj as Arc<dyn hooks::ChaosHooks>);
            std::thread::scope(|scope| {
                for w in 0..config.threads {
                    let target = &target;
                    scope.spawn(move || {
                        let _id = enter_worker(w, config.seed);
                        let _reg = hooks::register_current_thread();
                        let mut rng = SplitMix64::for_worker(config.seed, w);
                        for i in 0..config.ops_per_thread {
                            let abandon = plan.abandon_prob > 0 && rng.chance(plan.abandon_prob);
                            target.op(ThreadId(w as u32), i, &mut rng, abandon);
                            if abandon {
                                break;
                            }
                        }
                    });
                }
            });
        }
    }

    let history = target.history();
    // A loaded `.cal` spec shadows the target's built-in one, same
    // policy as `cal-check --spec`.
    let result = match &config.spec {
        Some(def) => dispatch(&history, &def.to_ca(OBJ), &config.check_options()),
        None => target.check(&history, config.check_options()),
    };
    let verdict = match result {
        Ok(CheckOutcome { verdict: Verdict::Cal(_), stats }) => ChaosVerdict::Passed(stats),
        Ok(CheckOutcome { verdict: Verdict::NotCal, stats }) => ChaosVerdict::Violation(stats),
        Ok(CheckOutcome { verdict, stats }) => {
            ChaosVerdict::Undecided(verdict.to_string(), stats)
        }
        Err(e) => ChaosVerdict::CheckerError(e.to_string()),
    };
    RunOutcome { config: config.clone(), history, verdict }
}

/// The result of a soak: either every seed passed, or the first failing
/// seed, shrunk to a minimal reproducer.
#[derive(Debug)]
pub enum SoakResult {
    /// All runs passed.
    Clean {
        /// How many seeded runs completed.
        runs: u64,
    },
    /// A run failed; the minimal reproducer found by shrinking.
    Failed {
        /// Runs completed before (and including) the failing one.
        runs: u64,
        /// The shrunk failure, ready to print.
        report: FailureReport,
    },
}

/// Soaks: runs `config` with seeds `seed, seed+1, …` until `budget`
/// elapses or a run fails. A failure is re-run and greedily shrunk to a
/// minimal reproducer (same seed, smaller workload).
pub fn soak(config: &RunConfig, budget: Duration) -> SoakResult {
    soak_with(config, budget, |_, _| {})
}

/// Like [`soak`], invoking `on_run` after every completed run with the
/// run's outcome and the wall-clock elapsed since the soak started —
/// the hook the `chaos-soak` binary hangs its progress lines and
/// per-seed search-statistics aggregation on. The failing run (if any)
/// is observed before shrinking begins.
pub fn soak_with(
    config: &RunConfig,
    budget: Duration,
    on_run: impl FnMut(&RunOutcome, Duration),
) -> SoakResult {
    soak_interruptible(config, budget, || false, on_run)
}

/// Like [`soak_with`], additionally polling `stop` between runs: when it
/// returns `true` the soak ends early with a [`SoakResult::Clean`] tally
/// of the runs completed so far. This is the cancellation point the
/// `chaos-soak` binary wires its SIGINT/SIGTERM flag into, so an
/// interrupted soak still flushes its per-target aggregates instead of
/// dying mid-loop. `stop` is checked *before* each run, never mid-run —
/// a run that has started always completes and is observed by `on_run`.
pub fn soak_interruptible(
    config: &RunConfig,
    budget: Duration,
    stop: impl Fn() -> bool,
    mut on_run: impl FnMut(&RunOutcome, Duration),
) -> SoakResult {
    let start = Instant::now();
    let mut runs = 0u64;
    loop {
        if stop() {
            return SoakResult::Clean { runs };
        }
        let mut cfg = config.clone();
        cfg.seed = config.seed.wrapping_add(runs);
        let outcome = run_once(&cfg);
        runs += 1;
        on_run(&outcome, start.elapsed());
        if let Some(class) = outcome.verdict.class() {
            let report = shrink::shrink_failure(outcome, class);
            return SoakResult::Failed { runs, report };
        }
        if start.elapsed() >= budget {
            return SoakResult::Clean { runs };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_and_mode_names_round_trip() {
        for t in TargetKind::ALL {
            assert_eq!(TargetKind::parse(t.name()), Some(t));
        }
        assert_eq!(TargetKind::parse("bogus"), None);
        for m in [Mode::Deterministic, Mode::Stress] {
            assert_eq!(Mode::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn deterministic_exchanger_run_passes() {
        let cfg = RunConfig { seed: 11, ..RunConfig::default() };
        let out = run_once(&cfg);
        assert!(out.verdict.class().is_none(), "unexpected failure: {}", out.verdict);
        assert!(out.history.is_well_formed());
    }

    #[test]
    fn deterministic_runs_are_bit_for_bit_reproducible() {
        for target in TargetKind::ALL {
            if target == TargetKind::BuggyExchanger {
                continue; // covered by its own test
            }
            let cfg = RunConfig { seed: 0xCA11, target, ..RunConfig::default() };
            let a = run_once(&cfg);
            let b = run_once(&cfg);
            assert_eq!(
                a.history.to_string(),
                b.history.to_string(),
                "{target}: same seed must give the same history"
            );
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        // Not guaranteed for any two seeds, but across 8 seeds the
        // histories must not all collapse to one interleaving.
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..8 {
            let cfg = RunConfig { seed, ..RunConfig::default() };
            distinct.insert(run_once(&cfg).history.to_string());
        }
        assert!(distinct.len() > 1, "seeds do not influence the schedule");
    }

    #[test]
    fn all_targets_pass_a_deterministic_run() {
        for target in TargetKind::ALL {
            if target == TargetKind::BuggyExchanger {
                continue;
            }
            let cfg = RunConfig { seed: 5, target, ..RunConfig::default() };
            let out = run_once(&cfg);
            assert!(
                out.verdict.class().is_none(),
                "{target} failed under chaos: {}\n{}",
                out.verdict,
                out.history
            );
        }
    }

    #[test]
    fn stress_mode_runs_and_passes() {
        let cfg = RunConfig { seed: 3, mode: Mode::Stress, ..RunConfig::default() };
        let out = run_once(&cfg);
        assert!(out.verdict.class().is_none(), "stress run failed: {}", out.verdict);
        assert!(out.history.is_well_formed());
    }

    /// The shipped exchanger `.cal` file, compiled at test time — the
    /// same source the soak binary loads with `--spec`.
    fn loaded_exchanger() -> Arc<SpecDef> {
        let file = cal_core::dsl::parse_str(include_str!("../../../specs/exchanger.cal"))
            .expect("shipped spec must compile");
        match file.specs() {
            [only] => Arc::clone(only),
            many => panic!("expected one spec, got {}", many.len()),
        }
    }

    /// A loaded spec drives the check instead of the built-in: the
    /// healthy exchanger still passes under the equivalent `.cal` spec.
    #[test]
    fn loaded_spec_checks_a_run() {
        let cfg =
            RunConfig { seed: 11, spec: Some(loaded_exchanger()), ..RunConfig::default() };
        let out = run_once(&cfg);
        assert!(out.verdict.class().is_none(), "unexpected failure: {}", out.verdict);
    }

    /// The loaded spec is really what the checker consults: it catches
    /// the planted misdelivery bug just like the built-in spec does, and
    /// the shrunk reproducer comes out of the same pipeline.
    #[test]
    fn loaded_spec_catches_the_planted_bug() {
        let cfg = RunConfig {
            seed: 1,
            target: TargetKind::BuggyExchanger,
            spec: Some(loaded_exchanger()),
            ..RunConfig::default()
        };
        match soak(&cfg, Duration::from_secs(10)) {
            SoakResult::Failed { report, .. } => {
                assert_eq!(report.class, FailureClass::Violation);
            }
            SoakResult::Clean { runs } => {
                panic!("planted bug survived {runs} soak runs under the loaded spec")
            }
        }
    }

    #[test]
    fn buggy_exchanger_soak_is_caught_quickly() {
        let cfg = RunConfig {
            seed: 1,
            target: TargetKind::BuggyExchanger,
            ..RunConfig::default()
        };
        match soak(&cfg, Duration::from_secs(10)) {
            SoakResult::Failed { report, .. } => {
                assert_eq!(report.class, FailureClass::Violation);
                let text = report.to_string();
                assert!(text.contains("seed"), "report must print the seed:\n{text}");
            }
            SoakResult::Clean { runs } => {
                panic!("planted bug survived {runs} soak runs")
            }
        }
    }
}
