//! Stream-fault family for the online checker: seeded perturbations of a
//! wire-format event stream, modelling what a `cal-serve` deployment
//! actually sees — truncated feeds, admission-bounded reordering,
//! clients dying mid-stream, and garbage on the wire.
//!
//! The family is defined at the *transport* level (text lines plus the
//! `abandon` control event), not the [`cal_core::Action`] level, so a fault can
//! produce exactly the malformed input a real socket can: a half line
//! cut mid-token, a line that parses as nothing at all. [`replay`]
//! drives the perturbed stream through a [`StreamChecker`] with the same
//! quarantine/backpressure/degradation policy as `cal-serve`'s stdin
//! loop, and the tests pin the family's soundness contract:
//!
//! - **Truncate** keeps a prefix of a consistent stream, so by prefix
//!   closure the verdict stays `consistent` or degrades to `undecided` —
//!   never a violation, never a panic.
//! - **Reorder** swaps only *adjacent, same-kind, different-thread*
//!   lines. Such swaps cannot move a response across a later invocation,
//!   so the precedence relation — and therefore the verdict — is
//!   unchanged.
//! - **ClientDeath** cuts one thread's events at a seeded point and
//!   declares it abandoned; its pending operation is sealed through the
//!   spec's completion machinery at the next retirement boundary.
//! - **Malformed** splices garbage lines into the stream; they are
//!   quarantined against the error budget and must not perturb the
//!   verdict while the budget holds.

use cal_core::spec::CaSpec;
use cal_core::stream::{Push, StreamChecker, StreamOptions, StreamVerdict};
use cal_core::text::{format_history, parse_action_line};
use cal_core::{History, ThreadId};

use crate::faults::SplitMix64;

/// One seeded perturbation of an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFault {
    /// Cut the stream at a seeded point, possibly mid-line.
    Truncate,
    /// Swap seeded pairs of adjacent same-kind lines by different
    /// threads (the reorderings admission cannot distinguish).
    Reorder,
    /// One seeded client's events stop at a seeded point; the thread is
    /// declared dead (`abandon`).
    ClientDeath,
    /// Garbage lines spliced in at seeded positions.
    Malformed,
}

impl StreamFault {
    /// Every member of the family.
    pub const ALL: [StreamFault; 4] =
        [StreamFault::Truncate, StreamFault::Reorder, StreamFault::ClientDeath, StreamFault::Malformed];

    /// Stable name, for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StreamFault::Truncate => "truncate",
            StreamFault::Reorder => "reorder",
            StreamFault::ClientDeath => "client-death",
            StreamFault::Malformed => "malformed",
        }
    }
}

/// One step of a perturbed stream: a raw wire line, or the out-of-band
/// news that a client died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A line to feed as-is (may be garbage or a truncated half-line).
    Line(String),
    /// The client driving `thread` disconnected without responding.
    Abandon(ThreadId),
}

/// Renders `history` to wire-format lines and applies `fault` at points
/// drawn from `seed`. Pure: the same inputs produce the same stream.
pub fn perturb(fault: StreamFault, seed: u64, history: &History) -> Vec<StreamEvent> {
    let mut rng = SplitMix64::new(seed ^ 0x0057_EA4F_A117_u64);
    let lines: Vec<String> = format_history(history).lines().map(str::to_owned).collect();
    let mut out: Vec<StreamEvent> = Vec::with_capacity(lines.len() + 4);
    match fault {
        StreamFault::Truncate => {
            let cut = if lines.is_empty() { 0 } else { rng.index(lines.len() + 1) };
            out.extend(lines[..cut].iter().cloned().map(StreamEvent::Line));
            // Half the time the cut lands mid-line, as a dying pipe would.
            if cut < lines.len() && rng.chance(128) {
                let line = &lines[cut];
                let keep = rng.index(line.len().max(1));
                out.push(StreamEvent::Line(line[..keep].to_owned()));
            }
        }
        StreamFault::Reorder => {
            let mut lines = lines;
            let mut i = 0;
            while i + 1 < lines.len() {
                let (a, b) = (parse(&lines[i]), parse(&lines[i + 1]));
                if let (Some(a), Some(b)) = (a, b) {
                    if a.is_invoke() == b.is_invoke()
                        && a.thread() != b.thread()
                        && rng.chance(96)
                    {
                        lines.swap(i, i + 1);
                        i += 2; // keep swaps non-overlapping
                        continue;
                    }
                }
                i += 1;
            }
            out.extend(lines.into_iter().map(StreamEvent::Line));
        }
        StreamFault::ClientDeath => {
            let mut threads: Vec<ThreadId> = Vec::new();
            for line in &lines {
                if let Some(a) = parse(line) {
                    if !threads.contains(&a.thread()) {
                        threads.push(a.thread());
                    }
                }
            }
            if threads.is_empty() {
                return lines.into_iter().map(StreamEvent::Line).collect();
            }
            let victim = threads[rng.index(threads.len())];
            let victim_lines: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| parse(l).is_some_and(|a| a.thread() == victim))
                .map(|(i, _)| i)
                .collect();
            let death = victim_lines[rng.index(victim_lines.len())];
            for (i, line) in lines.into_iter().enumerate() {
                if i == death {
                    out.push(StreamEvent::Abandon(victim));
                }
                if i < death || parse(&line).is_none_or(|a| a.thread() != victim) {
                    out.push(StreamEvent::Line(line));
                }
            }
        }
        StreamFault::Malformed => {
            const GARBAGE: [&str; 4] =
                ["?? not an action ??", "t9 flub", "inv res inv", "t1 inv o0."];
            let extra = 1 + rng.index(3);
            let mut splice: Vec<usize> =
                (0..extra).map(|_| rng.index(lines.len() + 1)).collect();
            splice.sort_unstable();
            let mut splice = splice.into_iter().peekable();
            for (i, line) in lines.into_iter().enumerate() {
                while splice.peek() == Some(&i) {
                    splice.next();
                    out.push(StreamEvent::Line(GARBAGE[rng.index(GARBAGE.len())].to_owned()));
                }
                out.push(StreamEvent::Line(line));
            }
            for _ in splice {
                out.push(StreamEvent::Line(GARBAGE[rng.index(GARBAGE.len())].to_owned()));
            }
        }
    }
    out
}

fn parse(line: &str) -> Option<cal_core::Action> {
    parse_action_line(1, line).ok().flatten()
}

/// Replays a perturbed stream through a fresh [`StreamChecker`] with
/// `cal-serve`'s stdin policy: parse errors and ill-formed events are
/// quarantined (counted, not fatal), saturation forces a checkpoint and
/// one retry before explicit degradation, and a refused stream stops the
/// replay. Returns the closing verdict and the quarantine count.
pub fn replay<S: CaSpec>(
    spec: S,
    opts: StreamOptions,
    events: &[StreamEvent],
) -> (StreamVerdict, u64) {
    let mut checker = StreamChecker::new(spec, opts);
    let mut quarantined = 0u64;
    'stream: for event in events {
        match event {
            StreamEvent::Abandon(t) => checker.abandon_thread(*t),
            StreamEvent::Line(line) => match parse_action_line(1, line) {
                Err(_) => quarantined += 1,
                Ok(None) => {}
                Ok(Some(action)) => match checker.push(action) {
                    Push::Admitted => {}
                    Push::Rejected(_) => quarantined += 1,
                    Push::Refused => break 'stream,
                    Push::Saturated => {
                        checker.checkpoint();
                        if checker.push(action) == Push::Saturated {
                            checker.degrade();
                        }
                    }
                },
            },
        }
    }
    (checker.finish(), quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_once, RunConfig, TargetKind};
    use cal_core::ObjectId;
    use cal_specs::exchanger::ExchangerSpec;

    /// A harvested healthy-exchanger history: consistent by construction.
    fn consistent_history(seed: u64) -> History {
        let cfg = RunConfig { seed, target: TargetKind::Exchanger, ..RunConfig::default() };
        run_once(&cfg).history
    }

    fn small_window() -> StreamOptions {
        StreamOptions { max_window: 16, checkpoint_every: 4, ..StreamOptions::default() }
    }

    /// Unperturbed replays of consistent histories stay consistent — the
    /// family's baseline.
    #[test]
    fn baseline_replay_is_consistent() {
        for seed in 0..8 {
            let h = consistent_history(seed);
            let events: Vec<StreamEvent> = cal_core::text::format_history(&h)
                .lines()
                .map(|l| StreamEvent::Line(l.to_owned()))
                .collect();
            let (verdict, quarantined) =
                replay(ExchangerSpec::new(ObjectId(0)), small_window(), &events);
            assert_eq!(verdict, StreamVerdict::Consistent, "seed {seed}");
            assert_eq!(quarantined, 0, "seed {seed}");
        }
    }

    /// Truncation of a consistent stream can only stay consistent or go
    /// undecided (prefix closure): never a violation, never a panic.
    #[test]
    fn truncation_never_fabricates_a_violation() {
        for seed in 0..24 {
            let h = consistent_history(seed);
            let events = perturb(StreamFault::Truncate, seed.wrapping_mul(31), &h);
            let (verdict, _) = replay(ExchangerSpec::new(ObjectId(0)), small_window(), &events);
            assert_ne!(verdict, StreamVerdict::Violation, "seed {seed}: {verdict}");
        }
    }

    /// Admission-bounded reordering preserves the precedence relation,
    /// so a consistent stream must stay exactly consistent.
    #[test]
    fn admission_bounded_reorder_preserves_the_verdict() {
        for seed in 0..24 {
            let h = consistent_history(seed);
            let events = perturb(StreamFault::Reorder, seed.wrapping_mul(37), &h);
            let (verdict, quarantined) =
                replay(ExchangerSpec::new(ObjectId(0)), small_window(), &events);
            assert_eq!(verdict, StreamVerdict::Consistent, "seed {seed}");
            assert_eq!(quarantined, 0, "seed {seed}: reorder must stay well-formed");
        }
    }

    /// A client dying mid-stream never panics the checker and always
    /// yields a contract verdict. (A violation is legitimate here: the
    /// replay is counterfactual — dropping a victim's later
    /// *invocations* can orphan a partner's recorded success, which no
    /// checker should explain.)
    #[test]
    fn client_death_never_panics() {
        for seed in 0..24 {
            let h = consistent_history(seed);
            let events = perturb(StreamFault::ClientDeath, seed.wrapping_mul(41), &h);
            let (first, _) = replay(ExchangerSpec::new(ObjectId(0)), small_window(), &events);
            let (again, _) = replay(ExchangerSpec::new(ObjectId(0)), small_window(), &events);
            assert_eq!(first, again, "seed {seed}: replay must be deterministic");
        }
    }

    /// The minimal realistic crash — the victim dies *between its final
    /// invocation and its response* — IS absorbed: the abandoned
    /// operation rides unsealed until the end, where the exchanger's
    /// completion machinery offers both the timeout failure and the
    /// partner-success pairing, so no violation can be fabricated.
    #[test]
    fn crash_before_final_response_is_absorbed() {
        for seed in 0..24 {
            let h = consistent_history(seed);
            let lines: Vec<String> =
                cal_core::text::format_history(&h).lines().map(str::to_owned).collect();
            // The victim's dropped response must be its final event, or
            // the remaining stream would be ill-formed (a dead client
            // cannot invoke again).
            let Some(last_res) = lines.iter().enumerate().rev().position(|(i, l)| {
                parse(l).is_some_and(|a| {
                    !a.is_invoke()
                        && lines[i + 1..]
                            .iter()
                            .all(|m| parse(m).is_none_or(|b| b.thread() != a.thread()))
                })
            }) else {
                continue;
            };
            let last_res = lines.len() - 1 - last_res;
            let victim = parse(&lines[last_res]).unwrap().thread();
            let mut events: Vec<StreamEvent> = lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != last_res)
                .map(|(_, l)| StreamEvent::Line(l.clone()))
                .collect();
            events.push(StreamEvent::Abandon(victim));
            // Default (ample) window: the abandoned op is never
            // force-sealed, so the final evaluation has exact batch
            // pending-op semantics.
            let (verdict, quarantined) =
                replay(ExchangerSpec::new(ObjectId(0)), StreamOptions::default(), &events);
            assert_ne!(verdict, StreamVerdict::Violation, "seed {seed}: {verdict}");
            assert_eq!(quarantined, 0, "seed {seed}");
        }
    }

    /// Garbage on the wire is quarantined and the surrounding stream is
    /// still judged on its own merits.
    #[test]
    fn malformed_lines_are_quarantined_and_harmless() {
        for seed in 0..24 {
            let h = consistent_history(seed);
            let events = perturb(StreamFault::Malformed, seed.wrapping_mul(43), &h);
            let (verdict, quarantined) =
                replay(ExchangerSpec::new(ObjectId(0)), small_window(), &events);
            assert_eq!(verdict, StreamVerdict::Consistent, "seed {seed}");
            assert!(quarantined >= 1, "seed {seed}: the splice must have been seen");
        }
    }

    /// The whole family is deterministic: same fault, seed and history,
    /// same perturbed stream.
    #[test]
    fn perturbations_replay_bit_for_bit() {
        let h = consistent_history(5);
        for fault in StreamFault::ALL {
            assert_eq!(perturb(fault, 99, &h), perturb(fault, 99, &h), "{}", fault.name());
        }
    }
}
