//! The two fault injectors: a deterministic token-passing scheduler and a
//! best-effort stress injector, both plugged into the objects through
//! [`cal_objects::hooks`].
//!
//! # Deterministic mode
//!
//! [`Scheduler`] runs the workload as *cooperative virtual threads*:
//! exactly one worker holds the token at any moment, and the token moves
//! only at instrumented chaos points, where a seeded coin decides whether
//! to switch and a seeded choice picks the successor. Because a worker's
//! behaviour between two chaos points is a deterministic function of the
//! object state, and the object state is a deterministic function of the
//! interleaving, the whole run — fault schedule, interleaving, recorded
//! history — is a pure function of the seed. Same seed, same bits.
//!
//! The price is that *real* parallelism is gone; delays are meaningless
//! (nobody else is running), so the deterministic injector spends its
//! randomness on scheduling, spurious CAS failures and abandonment only.
//!
//! # Stress mode
//!
//! [`StressInjector`] keeps real OS-thread parallelism and perturbs it:
//! seeded per-thread delay/yield streams at every chaos point, plus
//! spurious CAS failures. Runs are not bit-for-bit reproducible (the OS
//! scheduler still has a vote), so stress findings are re-run and shrunk
//! in deterministic mode when possible.

use std::cell::Cell;
use std::sync::{Arc, Condvar, Mutex};

use cal_objects::hooks::{ChaosHooks, Site};

use crate::faults::{FaultPlan, SplitMix64};

thread_local! {
    /// The worker index of the current thread within the active run, if
    /// it is a chaos worker at all.
    static WORKER_ID: Cell<Option<usize>> = const { Cell::new(None) };
    /// Per-thread RNG state for the stress injector.
    static STRESS_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Marks the current thread as chaos worker `index` until the guard
/// drops, and seeds its stress stream.
pub fn enter_worker(index: usize, seed: u64) -> WorkerGuard {
    WORKER_ID.with(|w| w.set(Some(index)));
    STRESS_RNG.with(|r| r.set(SplitMix64::for_worker(seed, index).next_u64()));
    WorkerGuard { _private: () }
}

/// Clears the worker mark on drop.
#[derive(Debug)]
pub struct WorkerGuard {
    _private: (),
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER_ID.with(|w| w.set(None));
    }
}

fn worker_id() -> Option<usize> {
    WORKER_ID.with(Cell::get)
}

/// Scheduler state under the one lock; the RNG is consumed only here, in
/// token order, which is what makes the run a pure function of the seed.
#[derive(Debug)]
struct SchedState {
    /// The worker holding the token (`usize::MAX` when all are done).
    current: usize,
    /// Which workers are still running their scripts.
    runnable: Vec<bool>,
    live: usize,
    rng: SplitMix64,
    plan: FaultPlan,
}

impl SchedState {
    /// Picks the next token holder among runnable workers, honouring the
    /// starvation bias. Returns `usize::MAX` when none are left.
    fn pick_next(&mut self) -> usize {
        let mut candidates: Vec<usize> =
            (0..self.runnable.len()).filter(|&i| self.runnable[i]).collect();
        if candidates.is_empty() {
            return usize::MAX;
        }
        if self.plan.starve_last && candidates.len() > 1 {
            let starved = self.runnable.len() - 1;
            // 7 times out of 8, the starved worker is not even considered.
            if candidates.contains(&starved) && !self.rng.chance(32) {
                candidates.retain(|&i| i != starved);
            }
        }
        candidates[self.rng.index(candidates.len())]
    }
}

/// The deterministic token-passing scheduler. Doubles as the
/// [`ChaosHooks`] implementation for deterministic runs.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    /// A scheduler for `threads` workers, seeded by `seed`.
    pub fn new(threads: usize, seed: u64, plan: FaultPlan) -> Arc<Self> {
        let mut rng = SplitMix64::new(seed);
        rng.next_u64(); // decorrelate from per-worker streams
        let mut state = SchedState {
            current: 0,
            runnable: vec![true; threads],
            live: threads,
            rng,
            plan,
        };
        state.current = state.pick_next();
        Arc::new(Scheduler { state: Mutex::new(state), cv: Condvar::new() })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks worker `me` until it holds the token. Call once at worker
    /// start-up.
    pub fn wait_for_turn(&self, me: usize) {
        let mut st = self.lock();
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A chaos point on worker `me`: a seeded coin decides whether to
    /// pass the token; if passed, blocks until it comes back.
    pub fn maybe_switch(&self, me: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.current, me, "chaos point off-token");
        let p = st.plan.switch_prob;
        if !st.rng.chance(p) {
            return;
        }
        let next = st.pick_next();
        if next == me {
            return;
        }
        st.current = next;
        self.cv.notify_all();
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A seeded coin flipped on the scheduler's stream. Only call while
    /// holding the token (workers are serialized, so this keeps the
    /// stream's consumption order deterministic).
    pub fn decide(&self, p_256: u8) -> bool {
        self.lock().rng.chance(p_256)
    }

    /// Worker `me` finished (or abandoned) its script: retire it and pass
    /// the token on.
    pub fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.runnable[me] = false;
        st.live -= 1;
        if st.current == me {
            st.current = st.pick_next();
        }
        self.cv.notify_all();
    }
}

impl ChaosHooks for Scheduler {
    fn at_point(&self, _site: Site) {
        if let Some(me) = worker_id() {
            self.maybe_switch(me);
        }
    }

    fn cas_should_fail(&self, site: Site) -> bool {
        if !is_cas_site(site) {
            return false;
        }
        match worker_id() {
            Some(_) => {
                let p = self.lock().plan.cas_fail_prob;
                p > 0 && self.decide(p)
            }
            None => false,
        }
    }

    fn choose_index(&self, _site: Site, bound: usize) -> Option<usize> {
        // Only the token holder ever asks, so the draw lands on the
        // scheduler's stream in token order — deterministic.
        worker_id().map(|_| self.lock().rng.index(bound))
    }
}

fn is_cas_site(site: Site) -> bool {
    matches!(
        site,
        Site::ExchangeInstall | Site::ExchangeMatch | Site::StackCas | Site::DualCas
    )
}

/// The stress injector: real parallelism, seeded per-thread perturbation
/// streams (delays, yields, spurious CAS failures).
#[derive(Debug)]
pub struct StressInjector {
    plan: FaultPlan,
    threads: usize,
}

impl StressInjector {
    /// A stress injector for `threads` workers under `plan`.
    pub fn new(threads: usize, plan: FaultPlan) -> Arc<Self> {
        Arc::new(StressInjector { plan, threads })
    }

    /// One draw from the calling thread's stream.
    fn draw(&self) -> u64 {
        STRESS_RNG.with(|r| {
            let mut rng = SplitMix64::new(r.get());
            let v = rng.next_u64();
            r.set(rng.next_u64());
            v
        })
    }

    fn chance(&self, p_256: u8) -> bool {
        (self.draw() & 0xFF) < u64::from(p_256)
    }
}

impl ChaosHooks for StressInjector {
    fn at_point(&self, _site: Site) {
        let Some(me) = worker_id() else { return };
        let starved = self.plan.starve_last && me + 1 == self.threads;
        if self.chance(self.plan.delay_prob) {
            let mut spins = self.draw() % u64::from(self.plan.max_delay_spins.max(1));
            if starved {
                spins *= 8;
            }
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        if self.chance(self.plan.yield_prob) || starved {
            std::thread::yield_now();
        }
    }

    fn cas_should_fail(&self, site: Site) -> bool {
        is_cas_site(site) && worker_id().is_some() && self.chance(self.plan.cas_fail_prob)
    }

    fn choose_index(&self, _site: Site, bound: usize) -> Option<usize> {
        worker_id().map(|_| (self.draw() % bound.max(1) as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Profile;

    #[test]
    fn scheduler_round_trips_one_worker() {
        let s = Scheduler::new(1, 9, Profile::Heavy.plan());
        let _w = enter_worker(0, 9);
        s.wait_for_turn(0);
        for _ in 0..100 {
            s.maybe_switch(0); // only candidate: never blocks
        }
        s.finish(0);
    }

    #[test]
    fn scheduler_serializes_two_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s = Scheduler::new(2, 3, Profile::Heavy.plan());
        let in_crit = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for me in 0..2 {
                let s = &s;
                let in_crit = &in_crit;
                scope.spawn(move || {
                    let _w = enter_worker(me, 3);
                    s.wait_for_turn(me);
                    for _ in 0..200 {
                        // Exactly one worker may be between chaos points.
                        assert_eq!(in_crit.fetch_add(1, Ordering::SeqCst), 0);
                        in_crit.fetch_sub(1, Ordering::SeqCst);
                        s.maybe_switch(me);
                    }
                    s.finish(me);
                });
            }
        });
    }

    #[test]
    fn unmarked_threads_pass_through_hooks() {
        let s = Scheduler::new(1, 1, Profile::Heavy.plan());
        // Not a worker: at_point must not block on the token.
        s.at_point(Site::OpStart);
        assert!(!s.cas_should_fail(Site::StackCas));
    }

    #[test]
    fn cas_sites_only() {
        assert!(is_cas_site(Site::StackCas));
        assert!(!is_cas_site(Site::OpStart));
        assert!(!is_cas_site(Site::ExchangeWait));
    }

    #[test]
    fn stress_injector_is_callable() {
        let inj = StressInjector::new(2, Profile::Heavy.plan());
        let _w = enter_worker(0, 5);
        inj.at_point(Site::ExchangeWait);
        let _ = inj.cas_should_fail(Site::StackCas);
    }
}
