//! # cal-chaos — deterministic fault injection for the live CAL objects
//!
//! A seeded, reproducible fault-injection and stress harness wrapping the
//! recorded objects of `cal-objects`. A run is described by a
//! [`driver::RunConfig`] — seed, workload shape, target object, fault
//! [`faults::Profile`] and scheduling [`driver::Mode`] — and proceeds in
//! three steps:
//!
//! 1. **Perturb.** An injector is installed into the objects' chaos
//!    points ([`cal_objects::hooks`]). In deterministic mode a
//!    token-passing [`injector::Scheduler`] serializes the workers and
//!    moves the token at seeded points, making the whole run — fault
//!    schedule, interleaving, recorded history — a pure function of the
//!    seed. In stress mode real OS threads run with seeded delay, yield
//!    and spurious-CAS-failure streams. Heavy profiles also *abandon*
//!    workers mid-operation, leaving pending invocations.
//! 2. **Harvest.** The recorded wrappers log the client-visible history.
//! 3. **Check.** The history is piped into the deadline-aware CAL
//!    checker ([`cal_core::check::check_cal_with`]) against the target's
//!    concurrency-aware (or sequential) specification.
//!
//! On a violation, undecided verdict or checker error, [`driver::soak`]
//! re-runs the failing seed and greedily [`shrink`]s the workload to a
//! minimal reproducer, printed with the seed
//! ([`report::FailureReport`]).
//!
//! ## Example
//!
//! ```
//! use cal_chaos::driver::{run_once, RunConfig, TargetKind};
//! let cfg = RunConfig { seed: 7, target: TargetKind::Exchanger, ..Default::default() };
//! let outcome = run_once(&cfg);
//! assert!(outcome.verdict.class().is_none(), "{}", outcome.verdict);
//! // Bit-for-bit: the same seed replays the same history.
//! assert_eq!(outcome.history.to_string(), run_once(&cfg).history.to_string());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod causal_faults;
pub mod driver;
pub mod faults;
pub mod foreign_faults;
pub mod injector;
pub mod report;
pub mod shrink;
pub mod stream_faults;

pub use driver::{run_once, soak, Mode, RunConfig, RunOutcome, SoakResult, TargetKind};
pub use faults::Profile;
pub use report::{FailureClass, FailureReport};
