//! Failure reports: everything a human needs to reproduce a chaos
//! finding — the seed, the workload shape, the verdict and the harvested
//! history.

use cal_core::check::CheckStats;

use crate::driver::RunOutcome;

/// The kind of failure a chaos run surfaced. Shrinking preserves the
/// class so a reproducer demonstrates the same problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The history violates its specification: an object bug.
    Violation,
    /// The checker gave up (node budget or deadline): the workload may
    /// need a bigger budget or a smaller shape.
    Undecided,
    /// The checker itself errored (ill-formed history or panicking
    /// spec): a harness or spec bug.
    CheckerError,
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureClass::Violation => f.write_str("specification violation"),
            FailureClass::Undecided => f.write_str("undecided check"),
            FailureClass::CheckerError => f.write_str("checker error"),
        }
    }
}

/// A shrunk, reproducible failure.
#[derive(Debug)]
pub struct FailureReport {
    /// The minimal failing configuration (seed included).
    pub config: crate::driver::RunConfig,
    /// The failure class the shrinker preserved.
    pub class: FailureClass,
    /// The verdict text of the minimal run.
    pub detail: String,
    /// The minimal run's harvested history.
    pub history: cal_core::History,
    /// Checker statistics summed over *every* replay the shrinker made
    /// (the original failing run included), not just the minimal one.
    pub search: CheckStats,
    /// How many checker runs contributed to [`FailureReport::search`].
    pub replays: u64,
}

impl FailureReport {
    /// Packages a (shrunk) failing outcome. The search totals start from
    /// the outcome's own stats; [`FailureReport::with_search_totals`]
    /// replaces them with the across-replay sums.
    pub fn new(outcome: RunOutcome, class: FailureClass) -> Self {
        let search = outcome.verdict.stats().copied().unwrap_or_default();
        FailureReport {
            detail: outcome.verdict.to_string(),
            class,
            history: outcome.history,
            config: outcome.config,
            search,
            replays: 1,
        }
    }

    /// Records the checker statistics accumulated across all `replays`
    /// shrinker runs.
    pub fn with_search_totals(mut self, search: CheckStats, replays: u64) -> Self {
        self.search = search;
        self.replays = replays;
        self
    }

    /// The CLI invocation that replays this exact failure.
    pub fn repro_command(&self) -> String {
        format!(
            "chaos-soak --seed {:#x} --target {} --threads {} --ops {} --profile {} --mode {}",
            self.config.seed,
            self.config.target,
            self.config.threads,
            self.config.ops_per_thread,
            self.config.profile,
            self.config.mode,
        )
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "chaos failure: {}", self.class)?;
        writeln!(f, "  detail:  {}", self.detail)?;
        writeln!(f, "  seed:    {:#x}", self.config.seed)?;
        writeln!(
            f,
            "  shape:   target={} threads={} ops/thread={} profile={} mode={}",
            self.config.target,
            self.config.threads,
            self.config.ops_per_thread,
            self.config.profile,
            self.config.mode,
        )?;
        writeln!(f, "  repro:   {}", self.repro_command())?;
        writeln!(
            f,
            "  search:  {} nodes, {} elements, {} memo hits across {} replays",
            self.search.nodes, self.search.elements_tried, self.search.memo_hits, self.replays,
        )?;
        writeln!(f, "  minimal failing history:")?;
        for line in self.history.to_string().lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_once, RunConfig, TargetKind};

    #[test]
    fn report_prints_seed_and_repro() {
        let cfg = RunConfig { seed: 0xBEEF, target: TargetKind::Exchanger, ..Default::default() };
        let outcome = run_once(&cfg);
        let report = FailureReport::new(outcome, FailureClass::Undecided);
        let text = report.to_string();
        assert!(text.contains("0xbeef"), "seed missing:\n{text}");
        assert!(text.contains("chaos-soak --seed 0xbeef"), "repro missing:\n{text}");
        assert!(text.contains("exchanger"), "target missing:\n{text}");
    }

    #[test]
    fn report_sums_stats_across_replays() {
        let cfg = RunConfig { seed: 0xBEEF, target: TargetKind::Exchanger, ..Default::default() };
        let outcome = run_once(&cfg);
        let last = outcome.verdict.stats().copied().unwrap();
        // Simulate the shrinker: three replays, each contributing stats.
        let mut total = CheckStats::default();
        for _ in 0..3 {
            total += last;
        }
        let report = FailureReport::new(outcome, FailureClass::Undecided)
            .with_search_totals(total, 3);
        assert_eq!(report.search.nodes, 3 * last.nodes);
        assert_eq!(report.search.elements_tried, 3 * last.elements_tried);
        assert_eq!(report.replays, 3);
        let text = report.to_string();
        assert!(
            text.contains(&format!("{} nodes", 3 * last.nodes)),
            "summed nodes missing:\n{text}"
        );
        assert!(text.contains("across 3 replays"), "replay count missing:\n{text}");
    }
}
