//! Causal fault family: weak-memory perturbations of a recorded history,
//! rendered as *annotated* kvlog wire text. Where [`crate::foreign_faults`]
//! models a trace collector losing information (crashes, partitions),
//! this family models the *machine* reordering it: the history's
//! real-time order is relaxed into a store-buffering or out-of-order
//! happens-before sub-order ([`cal_sim::weakmem`]), and the surviving
//! cross-thread edges are emitted as explicit kvlog `hb` lines for the
//! causal checking mode to consume.
//!
//! Soundness contract (pinned by the tests, the mirror of the
//! foreign-fault one): relaxation only ever *removes* ordering
//! constraints, so perturbing a consistent history yields a trace that
//! is still causally consistent — in the batch checker and in the
//! streaming checker's causal mode alike. The family can only ever turn
//! a rejection into an acceptance (a genuine reordering witness), never
//! the reverse.

use cal_core::causal::{causal_order, check_causal};
use cal_core::check::Verdict;
use cal_core::format::{format_kvlog_annotated, FormatError};
use cal_core::History;
use cal_sim::weakmem::{relax, WeakMemProfile};

/// Renders `history` as kvlog lines annotated with the happens-before
/// edges that survive `profile`'s relaxation at `seed`. Pure: the same
/// inputs produce the same trace, and the result always parses under
/// [`cal_core::format::Format::KvLog`] with
/// [`cal_core::format::parse_annotated`] surfacing the edges.
///
/// With zero surviving edges the annotation degenerates to the
/// `hb session` directive — still *annotated* (causal mode must not fall
/// back to real time), just maximally relaxed.
///
/// # Errors
///
/// Returns [`FormatError`] when the history cannot be expressed as
/// kvlog (non-kv methods, exotic values) — the caller picked an
/// unsuitable history, not a fault of the seed.
pub fn perturb_causal(
    profile: WeakMemProfile,
    seed: u64,
    history: &History,
) -> Result<String, FormatError> {
    let edges = relax(history, profile, seed);
    format_kvlog_annotated(history, &edges)
}

/// `true` iff the perturbed trace's surviving order still explains the
/// history: builds the causal order from the declared edges and runs the
/// causal membership check. The soundness tests call this on histories
/// known to be consistent in real time and require `true`.
pub fn causally_consistent<S: cal_core::spec::CaSpec>(
    history: &History,
    spec: &S,
    edges: &[(usize, usize)],
) -> bool {
    let hb = causal_order(history, edges).expect("relaxed edges are well-formed");
    matches!(check_causal(history, spec, &hb), Ok(o) if matches!(o.verdict, Verdict::Cal(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::SplitMix64;
    use crate::foreign_faults::replay_foreign;
    use cal_core::check::is_cal;
    use cal_core::format::{parse_annotated, Format};
    use cal_core::spec::SeqAsCa;
    use cal_core::stream::{StreamOptions, StreamVerdict};
    use cal_core::{Action, History, ObjectId, ThreadId, Value};
    use cal_specs::kv::KvMapSpec;
    use cal_specs::vocab::{READ, WRITE};
    use std::collections::HashMap;

    /// A sequential (hence consistent) multi-client kv history with
    /// disjoint put/get phases, timestamp-faithful when rendered as
    /// kvlog.
    fn consistent_kv_history(seed: u64) -> History {
        let mut rng = SplitMix64::new(seed);
        let mut state: HashMap<u32, i64> = HashMap::new();
        let mut actions = Vec::new();
        for _ in 0..16 {
            let t = ThreadId(rng.index(3) as u32);
            let k = rng.index(2) as u32;
            let key = ObjectId(k);
            if rng.chance(128) {
                let v = rng.index(5) as i64;
                actions.push(Action::invoke(t, key, WRITE, Value::Int(v)));
                actions.push(Action::response(t, key, WRITE, Value::Unit));
                state.insert(k, v);
            } else {
                let v = state.get(&k).copied().unwrap_or(0);
                actions.push(Action::invoke(t, key, READ, Value::Unit));
                actions.push(Action::response(t, key, READ, Value::Int(v)));
            }
        }
        History::from_actions(actions)
    }

    /// The store-buffering anomaly: client 1 writes 1 and completes,
    /// then client 2 reads 0. Rejected in real time, explained once the
    /// write's visibility edge is relaxed away.
    fn stale_read() -> History {
        let k = ObjectId(0);
        History::from_actions(vec![
            Action::invoke(ThreadId(1), k, WRITE, Value::Int(1)),
            Action::response(ThreadId(1), k, WRITE, Value::Unit),
            Action::invoke(ThreadId(2), k, READ, Value::Unit),
            Action::response(ThreadId(2), k, READ, Value::Int(0)),
        ])
    }

    #[test]
    fn perturbations_are_deterministic_and_parse() {
        let h = consistent_kv_history(3);
        for profile in WeakMemProfile::ALL {
            let a = perturb_causal(profile, 41, &h).unwrap();
            let b = perturb_causal(profile, 41, &h).unwrap();
            assert_eq!(a, b, "{profile}");
            let annotated = parse_annotated(Format::KvLog, &a)
                .unwrap_or_else(|e| panic!("{profile}: perturbed trace must parse: {e}"));
            assert!(
                annotated.hb_edges.is_some(),
                "{profile}: the trace must carry causality metadata"
            );
        }
    }

    /// Batch soundness: a consistent history stays causally consistent
    /// under every profile and seed — relaxation never fabricates a
    /// violation.
    #[test]
    fn relaxation_is_sound_in_batch() {
        let spec = SeqAsCa::new(KvMapSpec::new());
        for seed in 0..12u64 {
            let h = consistent_kv_history(seed);
            assert!(is_cal(&h, &spec).unwrap(), "seed {seed}: baseline must be consistent");
            for profile in WeakMemProfile::ALL {
                let wire = perturb_causal(profile, seed.wrapping_mul(43), &h).unwrap();
                let annotated = parse_annotated(Format::KvLog, &wire).unwrap();
                let edges = annotated.hb_edges.expect("annotated");
                assert!(
                    causally_consistent(&annotated.history, &spec, &edges),
                    "{profile} seed {seed}: relaxation fabricated a violation:\n{wire}"
                );
            }
        }
    }

    /// Streaming soundness: the same traces replayed through the
    /// streaming checker in causal mode never yield a violation and
    /// never quarantine a line.
    #[test]
    fn relaxation_is_sound_in_the_stream() {
        for profile in WeakMemProfile::ALL {
            for seed in 0..12u64 {
                let h = consistent_kv_history(seed);
                let wire = perturb_causal(profile, seed.wrapping_mul(47), &h).unwrap();
                let (verdict, quarantined) = replay_foreign(
                    SeqAsCa::new(KvMapSpec::new()),
                    StreamOptions { causal: true, ..StreamOptions::default() },
                    &wire,
                );
                assert_ne!(
                    verdict,
                    StreamVerdict::Violation,
                    "{profile} seed {seed}:\n{wire}"
                );
                assert_eq!(quarantined, 0, "{profile} seed {seed}");
            }
        }
    }

    /// The family produces genuine reordering witnesses: the stale read
    /// is rejected in real time, but some store-buffering seed drops the
    /// write→read visibility edge and the causal check accepts.
    #[test]
    fn store_buffering_produces_a_reordering_witness() {
        let h = stale_read();
        let spec = SeqAsCa::new(KvMapSpec::new());
        assert!(!is_cal(&h, &spec).unwrap(), "the stale read must be rejected in real time");
        let explained = (0..16u64).any(|seed| {
            let edges = relax(&h, WeakMemProfile::StoreBuffering, seed);
            edges.is_empty() && causally_consistent(&h, &spec, &edges)
        });
        assert!(explained, "no seed in 0..16 relaxed the visibility edge");
    }
}
