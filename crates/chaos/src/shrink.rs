//! Greedy workload shrinking: turn a failing chaos run into a minimal
//! reproducer.
//!
//! Deterministic runs are pure functions of `(seed, workload shape)`, so
//! shrinking is just re-running candidate shapes with the same seed and
//! keeping the smallest one that still fails *in the same class*. The
//! shrinker never changes the seed: the reproducer it prints is the run
//! it verified.

use crate::driver::{run_once, RunConfig, RunOutcome};
use crate::report::{FailureClass, FailureReport};

/// Shrinks a failing run to a minimal reproducer of the same failure
/// class, greedily: halve the per-thread op count, then drop threads,
/// re-running after each candidate step and keeping it only if the
/// failure persists. Returns the report for the smallest failure found
/// (at worst, the original), with checker statistics summed over every
/// replay — including replays that did *not* reproduce and were
/// discarded, which the report would otherwise silently drop.
pub fn shrink_failure(failing: RunOutcome, class: FailureClass) -> FailureReport {
    let mut total = failing.verdict.stats().copied().unwrap_or_default();
    let mut replays = 1u64;
    let mut best = failing;
    loop {
        let mut improved = false;
        for candidate in candidates(&best.config) {
            let outcome = run_once(&candidate);
            if let Some(stats) = outcome.verdict.stats() {
                total += *stats;
            }
            replays += 1;
            if outcome.verdict.class() == Some(class) {
                best = outcome;
                improved = true;
                break; // restart candidate generation from the new best
            }
        }
        if !improved {
            return FailureReport::new(best, class).with_search_totals(total, replays);
        }
    }
}

/// Strictly smaller workload shapes, most aggressive first.
fn candidates(cfg: &RunConfig) -> Vec<RunConfig> {
    let mut out = Vec::new();
    if cfg.ops_per_thread > 1 {
        let mut c = cfg.clone();
        c.ops_per_thread = cfg.ops_per_thread / 2;
        out.push(c);
        let mut c = cfg.clone();
        c.ops_per_thread = cfg.ops_per_thread - 1;
        out.push(c);
    }
    if cfg.threads > 2 {
        let mut c = cfg.clone();
        c.threads = cfg.threads - 1;
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TargetKind;

    #[test]
    fn candidates_shrink_strictly() {
        let cfg = RunConfig { threads: 4, ops_per_thread: 8, ..RunConfig::default() };
        for c in candidates(&cfg) {
            assert!(
                c.threads < cfg.threads || c.ops_per_thread < cfg.ops_per_thread,
                "candidate does not shrink"
            );
            assert_eq!(c.seed, cfg.seed, "shrinking must not change the seed");
        }
    }

    #[test]
    fn no_candidates_at_the_floor() {
        let cfg = RunConfig { threads: 2, ops_per_thread: 1, ..RunConfig::default() };
        assert!(candidates(&cfg).is_empty());
    }

    #[test]
    fn shrunk_buggy_exchanger_still_fails() {
        // Find a failing seed first, then shrink it and confirm the
        // reproducer is both smaller-or-equal and still failing.
        let mut failing = None;
        for seed in 0..64 {
            let cfg = RunConfig {
                seed,
                threads: 4,
                ops_per_thread: 8,
                target: TargetKind::BuggyExchanger,
                ..RunConfig::default()
            };
            let out = run_once(&cfg);
            if out.verdict.class() == Some(FailureClass::Violation) {
                failing = Some(out);
                break;
            }
        }
        let failing = failing.expect("no seed in 0..64 triggered the planted bug");
        let report = shrink_failure(failing.clone(), FailureClass::Violation);
        assert!(report.config.threads <= failing.config.threads);
        assert!(report.config.ops_per_thread <= failing.config.ops_per_thread);
        // The report's search totals cover every replay, so they are at
        // least the original run's and grow with the replay count.
        let original = failing.verdict.stats().copied().unwrap();
        assert!(report.replays >= 1);
        assert!(
            report.search.nodes >= original.nodes,
            "summed nodes {} below the original run's {}",
            report.search.nodes,
            original.nodes
        );
        // The reproducer replays: same seed, same class.
        let replay = run_once(&report.config);
        assert_eq!(replay.verdict.class(), Some(FailureClass::Violation));
    }
}
