//! Foreign-trace fault family: seeded perturbations of a history
//! rendered as Jepsen-style records, modelling the distributed-system
//! failures a real trace collector records — a client crashing between
//! its invocation and its acknowledgement, and a network partition
//! swallowing a window of acknowledgements. The fault is applied at the
//! *observer's* level: a lost ack becomes an `:info` record (the
//! operation's outcome is unknown forever), and the crashed client comes
//! back under a fresh process id, exactly as a Jepsen harness would
//! report it.
//!
//! Soundness contract (pinned by the tests): a perturbation only ever
//! *removes* information — a completed operation becomes a pending one
//! whose original completion is still admissible — so perturbing a
//! consistent history can yield `consistent` or `undecided`, never a
//! fabricated violation, in both the batch parser and the streaming
//! decoder.

use std::collections::HashMap;

use cal_core::format::{StreamDecoder, WireItem};
use cal_core::spec::CaSpec;
use cal_core::stream::{Push, StreamChecker, StreamOptions, StreamVerdict};
use cal_core::{Action, ActionKind, History, ThreadId, Value};

use crate::faults::SplitMix64;

/// One seeded distributed-system fault applied to a foreign trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForeignFault {
    /// One client crashes after invoking: its acknowledgement is lost
    /// (the record degrades to `:info`) and the client restarts under a
    /// fresh process id.
    CrashRestart,
    /// A seeded window of the trace partitions a seeded subset of
    /// clients from the observer: each affected client's first
    /// acknowledgement inside the window is lost, and the client rejoins
    /// under a fresh process id.
    Partition,
}

impl ForeignFault {
    /// Every member of the family.
    pub const ALL: [ForeignFault; 2] = [ForeignFault::CrashRestart, ForeignFault::Partition];

    /// Stable name, for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ForeignFault::CrashRestart => "crash-restart",
            ForeignFault::Partition => "partition",
        }
    }
}

/// Renders `history` as Jepsen-style records with `fault` applied at
/// points drawn from `seed`. Pure: the same inputs produce the same
/// trace. The result always parses under
/// [`cal_core::format::Format::Jepsen`].
pub fn perturb_foreign(fault: ForeignFault, seed: u64, history: &History) -> String {
    let mut rng = SplitMix64::new(seed ^ 0x0F0E_1637_FA17_u64);
    let actions = history.actions();
    // Indices whose response degrades to an `:info` record — at most one
    // per thread, so every retired process stays retired.
    let mut cuts: Vec<usize> = Vec::new();
    match fault {
        ForeignFault::CrashRestart => {
            let responses: Vec<usize> =
                (0..actions.len()).filter(|&i| actions[i].is_response()).collect();
            if !responses.is_empty() {
                cuts.push(responses[rng.index(responses.len())]);
            }
        }
        ForeignFault::Partition => {
            if !actions.is_empty() {
                let lo = rng.index(actions.len());
                let hi = lo + 1 + rng.index(actions.len() - lo);
                let mut threads: Vec<ThreadId> = Vec::new();
                for a in actions {
                    if !threads.contains(&a.thread()) {
                        threads.push(a.thread());
                    }
                }
                for t in threads.into_iter().filter(|_| rng.chance(128)) {
                    if let Some(i) =
                        (lo..hi).find(|&i| actions[i].is_response() && actions[i].thread() == t)
                    {
                        cuts.push(i);
                    }
                }
            }
        }
    }
    render_with_cuts(history, &cuts)
}

/// Renders the history as one Jepsen record per action, degrading the
/// responses at `cuts` to `:info` and moving the affected thread's later
/// actions onto a fresh process id (the restarted client).
fn render_with_cuts(history: &History, cuts: &[usize]) -> String {
    let actions = history.actions();
    let mut fresh = actions.iter().map(|a| a.thread().0).max().map_or(0, |m| m + 1);
    // The wire process id currently carrying each original thread.
    let mut process: HashMap<ThreadId, u32> = HashMap::new();
    let mut out = String::new();
    for (i, a) in actions.iter().enumerate() {
        let p = *process.entry(a.thread()).or_insert(a.thread().0);
        if cuts.contains(&i) {
            // The ack never reached the observer: outcome unknown, the
            // process is retired, the client restarts fresh.
            out.push_str(&record(p, "info", a, Value::Unit));
            out.push_str(&format!("; process {p} crashed; client restarts as {fresh}\n"));
            process.insert(a.thread(), fresh);
            fresh += 1;
        } else {
            match a.kind() {
                ActionKind::Invoke(arg) => out.push_str(&record(p, "invoke", a, arg)),
                ActionKind::Response(ret) => out.push_str(&record(p, "ok", a, ret)),
            }
        }
    }
    out
}

fn record(process: u32, kind: &str, a: &Action, value: Value) -> String {
    format!(
        "{{:process {process}, :type :{kind}, :f :{}, :value {}, :key {}}}\n",
        a.method().0,
        jval(value),
        a.object().0
    )
}

/// The EDN spelling of a wire value, matching what the Jepsen parser
/// reads back (`nil`, booleans, integers, `[bool int]` pairs).
fn jval(v: Value) -> String {
    match v {
        Value::Unit => "nil".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Pair(b, n) => format!("[{b} {n}]"),
    }
}

/// Replays a foreign wire text through a [`StreamDecoder`] and a fresh
/// [`StreamChecker`] with `cal-serve`'s stdin policy: malformed lines
/// are quarantined (counted, not fatal), an abandoned thread is sealed
/// through the specification's timeout-admission completions, and
/// saturation forces a checkpoint and one retry before explicit
/// degradation. Returns the closing verdict and the quarantine count.
pub fn replay_foreign<S: CaSpec>(
    spec: S,
    opts: StreamOptions,
    input: &str,
) -> (StreamVerdict, u64) {
    let mut checker = StreamChecker::new(spec, opts);
    let mut decoder = StreamDecoder::new(None);
    let mut quarantined = 0u64;
    'stream: for (i, line) in input.lines().enumerate() {
        match decoder.decode_line(i + 1, line) {
            Err(_) => quarantined += 1,
            Ok(items) => {
                for item in items {
                    match item {
                        WireItem::Abandon(t) => checker.abandon_thread(t),
                        WireItem::HbEdge { from, to } => {
                            if checker.push_hb_edge(from, to) == Push::Refused {
                                break 'stream;
                            }
                        }
                        WireItem::Action(action) => match checker.push(action) {
                            Push::Admitted => {}
                            Push::Rejected(_) => quarantined += 1,
                            Push::Refused => break 'stream,
                            Push::Saturated => {
                                checker.checkpoint();
                                if checker.push(action) == Push::Saturated {
                                    checker.degrade();
                                }
                            }
                        },
                    }
                }
            }
        }
    }
    (checker.finish(), quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::check::check_cal;
    use cal_core::format::{parse_as, Format};
    use cal_core::seqlin::is_linearizable;
    use cal_core::spec::SeqAsCa;
    use cal_core::ObjectId;
    use cal_specs::kv::KvMapSpec;
    use cal_specs::vocab::{READ, WRITE};

    /// A sequential (hence consistent) multi-thread kv history: every
    /// read observes the value the map actually held.
    fn consistent_kv_history(seed: u64) -> History {
        let mut rng = SplitMix64::new(seed);
        let mut state: HashMap<u32, i64> = HashMap::new();
        let mut actions = Vec::new();
        for _ in 0..24 {
            let t = ThreadId(rng.index(3) as u32);
            let k = rng.index(2) as u32;
            let key = ObjectId(k);
            if rng.chance(128) {
                let v = rng.index(5) as i64;
                actions.push(Action::invoke(t, key, WRITE, Value::Int(v)));
                actions.push(Action::response(t, key, WRITE, Value::Unit));
                state.insert(k, v);
            } else {
                let v = state.get(&k).copied().unwrap_or(0);
                actions.push(Action::invoke(t, key, READ, Value::Unit));
                actions.push(Action::response(t, key, READ, Value::Int(v)));
            }
        }
        History::from_actions(actions)
    }

    /// Same fault, seed and history — same perturbed trace, byte for
    /// byte.
    #[test]
    fn perturbations_are_deterministic() {
        let h = consistent_kv_history(5);
        for fault in ForeignFault::ALL {
            assert_eq!(
                perturb_foreign(fault, 99, &h),
                perturb_foreign(fault, 99, &h),
                "{}",
                fault.name()
            );
        }
    }

    /// A crash-restart of a consistent history always parses, always
    /// carries the `:info` record, and never fabricates a violation in
    /// the batch checkers: the lost ack's original completion is still
    /// admissible.
    #[test]
    fn crash_restart_is_sound_in_batch() {
        for seed in 0..24u64 {
            let h = consistent_kv_history(seed);
            let wire = perturb_foreign(ForeignFault::CrashRestart, seed.wrapping_mul(31), &h);
            assert!(wire.contains(":info"), "seed {seed}: no crash recorded:\n{wire}");
            let parsed = parse_as(Format::Jepsen, &wire)
                .unwrap_or_else(|e| panic!("seed {seed}: perturbed trace must parse: {e}"));
            assert!(is_linearizable(&parsed, &KvMapSpec::new()).unwrap(), "seed {seed}");
            assert!(
                check_cal(&parsed, &SeqAsCa::new(KvMapSpec::new())).unwrap().verdict.is_cal(),
                "seed {seed}"
            );
        }
    }

    /// The restarted client is visible: for histories where the victim
    /// keeps operating past the crash, a fresh process id appears.
    #[test]
    fn crash_restart_reassigns_the_process_id() {
        let restarted = (0..24u64).any(|seed| {
            let h = consistent_kv_history(seed);
            let wire = perturb_foreign(ForeignFault::CrashRestart, seed.wrapping_mul(31), &h);
            // Threads are 0..3, so any process ≥ 3 is a restart.
            wire.lines().any(|l| l.contains(":process 3") || l.contains(":process 4"))
        });
        assert!(restarted, "no seed in 0..24 exercised the restart path");
    }

    /// A partition of a consistent history parses and never fabricates a
    /// violation in the batch checkers.
    #[test]
    fn partition_is_sound_in_batch() {
        for seed in 0..24u64 {
            let h = consistent_kv_history(seed);
            let wire = perturb_foreign(ForeignFault::Partition, seed.wrapping_mul(37), &h);
            let parsed = parse_as(Format::Jepsen, &wire)
                .unwrap_or_else(|e| panic!("seed {seed}: perturbed trace must parse: {e}"));
            assert!(is_linearizable(&parsed, &KvMapSpec::new()).unwrap(), "seed {seed}");
        }
    }

    /// The streaming path agrees: decoding the perturbed trace through
    /// [`StreamDecoder`] (where `:info` becomes an abandon) and replaying
    /// it against the kv spec never yields a violation and never
    /// quarantines a line.
    #[test]
    fn stream_replay_never_fabricates_a_violation() {
        for fault in ForeignFault::ALL {
            for seed in 0..24u64 {
                let h = consistent_kv_history(seed);
                let wire = perturb_foreign(fault, seed.wrapping_mul(41), &h);
                let (verdict, quarantined) = replay_foreign(
                    SeqAsCa::new(KvMapSpec::new()),
                    StreamOptions::default(),
                    &wire,
                );
                assert_ne!(
                    verdict,
                    StreamVerdict::Violation,
                    "{} seed {seed}:\n{wire}",
                    fault.name()
                );
                assert_eq!(quarantined, 0, "{} seed {seed}", fault.name());
            }
        }
    }
}
