//! # cal-sim — deterministic concurrency substrate
//!
//! The paper proves its theorems with a program logic; this crate provides
//! the executable analogue: each algorithm of Figs. 1–2 is rendered as a
//! *step machine* in which every step is one shared-memory access, and a
//! scheduler explores **all** interleavings of bounded client programs
//! (or seeded random samples of larger ones). Each explored schedule
//! yields the client-visible [`cal_core::History`], the auxiliary trace
//! `𝒯` logged at the paper's instrumentation points, and optionally a
//! transition log consumed by the rely/guarantee checker in `cal-rg`.
//!
//! - [`model`] — the [`model::Model`] trait, step outcomes and the logging
//!   context;
//! - [`sched`] — the exhaustive DFS [`sched::Explorer`] and random
//!   sampler;
//! - [`models`] — the exchanger (Fig. 1), failing and retrying stacks,
//!   elimination array, elimination stack (Fig. 2) and synchronous queue;
//! - [`weakmem`] — seeded store-buffering / reordering relaxations of a
//!   recorded history's real-time order into a weak-memory-plausible
//!   happens-before sub-order, for the causal checking mode.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod models;
pub mod sched;
pub mod weakmem;

pub use model::{Model, OpRequest, StepCtx, StepOutcome};
pub use sched::{Execution, ExploreStats, Explorer, Transition, TransitionKind, Workload};
