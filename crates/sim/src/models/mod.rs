//! Step-machine models of the paper's algorithms, one module per object.

pub mod dual_stack;
pub mod elim_array;
pub mod elim_stack;
pub mod exchanger;
pub mod faulty;
pub mod snapshot;
pub mod stack;
pub mod sync_queue;
