//! Step-machine model of a synchronous queue built on an exchanger — the
//! extended paper's second client (§2, after Scherer–Lea–Scott).
//!
//! `put(v)` repeatedly offers `v` to the encapsulated exchanger until it
//! receives the take sentinel (a consumer's offer); `take()` offers the
//! sentinel until it receives a plain value. Retries are bounded; an
//! exhausted budget is a *timeout*, returning `false` / `(false, 0)` and
//! logging the corresponding singleton CA-element on the queue itself.
//! Successful transfers are not logged by the queue — `F_Q` derives them
//! from the exchanger's swap elements, the paper's compositional recipe.

use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use crate::models::exchanger::{exchanger_step, ExchangerLocal, ExchangerShared};
use cal_specs::vocab::{PUT, TAKE, TAKE_SENTINEL};

/// Shared state: the encapsulated exchanger.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SyncQueueShared {
    /// The internal exchanger.
    pub exchanger: ExchangerShared,
}

/// Which operation is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum QOp {
    Put { v: i64 },
    Take,
}

/// Local state of one queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncQueueLocal {
    op: QOp,
    attempts_left: u8,
    inner: ExchangerLocal,
}

/// The synchronous queue model: object `queue` encapsulating exchanger
/// `exchanger`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncQueueModel {
    queue: ObjectId,
    exchanger: ObjectId,
    max_attempts: u8,
}

impl SyncQueueModel {
    /// Creates a queue named `queue` over exchanger `exchanger`, retrying a
    /// rendezvous at most `max_attempts` times before timing out.
    pub fn new(queue: ObjectId, exchanger: ObjectId, max_attempts: u8) -> Self {
        SyncQueueModel { queue, exchanger, max_attempts }
    }

    /// The encapsulated exchanger's object id.
    pub fn exchanger_object(&self) -> ObjectId {
        self.exchanger
    }

    fn offer_of(op: QOp) -> i64 {
        match op {
            QOp::Put { v } => v,
            QOp::Take => TAKE_SENTINEL,
        }
    }

    fn timeout(&self, op: QOp, t: ThreadId, ctx: &mut StepCtx<'_>) -> StepOutcome<SyncQueueLocal> {
        match op {
            QOp::Put { v } => {
                ctx.label("Q-TIMEOUT");
                ctx.log(CaElement::singleton(Operation::new(
                    t,
                    self.queue,
                    PUT,
                    Value::Int(v),
                    Value::Bool(false),
                )));
                StepOutcome::Done(Value::Bool(false))
            }
            QOp::Take => {
                ctx.label("Q-TIMEOUT");
                ctx.log(CaElement::singleton(Operation::new(
                    t,
                    self.queue,
                    TAKE,
                    Value::Unit,
                    Value::Pair(false, 0),
                )));
                StepOutcome::Done(Value::Pair(false, 0))
            }
        }
    }
}

impl Model for SyncQueueModel {
    type Shared = SyncQueueShared;
    type Local = SyncQueueLocal;

    fn object(&self) -> ObjectId {
        self.queue
    }

    fn init_shared(&self) -> SyncQueueShared {
        SyncQueueShared::default()
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> SyncQueueLocal {
        let op = match request.method {
            PUT => {
                let v = request.arg.as_int().expect("put takes an integer");
                assert!(v != TAKE_SENTINEL, "cannot put the take sentinel");
                QOp::Put { v }
            }
            TAKE => QOp::Take,
            other => panic!("synchronous queue does not offer {other}"),
        };
        SyncQueueLocal {
            op,
            attempts_left: self.max_attempts,
            inner: ExchangerLocal::Init { v: Self::offer_of(op) },
        }
    }

    fn step(
        &self,
        shared: &mut SyncQueueShared,
        local: &mut SyncQueueLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<SyncQueueLocal> {
        // The exchanger's own FAIL elements are part of E's trace and are
        // hidden by F_Q; we log them normally (they belong to E).
        match exchanger_step(self.exchanger, &mut shared.exchanger, &mut local.inner, ctx) {
            StepOutcome::Continue => StepOutcome::Continue,
            StepOutcome::Done(ret) => {
                let (ok, got) = ret.as_pair().expect("exchange returns a pair");
                match local.op {
                    QOp::Put { .. } if ok && got == TAKE_SENTINEL => {
                        StepOutcome::Done(Value::Bool(true))
                    }
                    QOp::Take if ok && got != TAKE_SENTINEL => {
                        StepOutcome::Done(Value::Pair(true, got))
                    }
                    op => {
                        if local.attempts_left == 0 {
                            self.timeout(op, ctx.thread, ctx)
                        } else {
                            local.attempts_left -= 1;
                            local.inner = ExchangerLocal::Init { v: Self::offer_of(op) };
                            StepOutcome::Continue
                        }
                    }
                }
            }
            StepOutcome::Stuck => StepOutcome::Stuck,
            StepOutcome::Choose(_) => unreachable!("exchanger never branches"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::agree::agrees_bool;
    use cal_core::compose::TraceMap;
    use cal_core::spec::CaSpec;
    use cal_specs::sync_queue::{FQMap, SyncQueueSpec};

    const Q: ObjectId = ObjectId(0);
    const E: ObjectId = ObjectId(10);

    fn model() -> SyncQueueModel {
        SyncQueueModel::new(Q, E, 0)
    }

    fn put(v: i64) -> OpRequest {
        OpRequest::new(PUT, Value::Int(v))
    }

    fn take() -> OpRequest {
        OpRequest::new(TAKE, Value::Unit)
    }

    #[test]
    fn lone_put_times_out() {
        let m = model();
        let w = Workload::new(vec![vec![put(5)]]);
        Explorer::new(&m, w).run(|e| {
            assert_eq!(e.history.operations()[0].ret, Value::Bool(false));
        });
    }

    #[test]
    fn producer_consumer_can_rendezvous() {
        let m = model();
        let w = Workload::new(vec![vec![put(5)], vec![take()]]);
        let mut transferred = false;
        Explorer::new(&m, w).run(|e| {
            for op in e.history.operations() {
                if op.ret == Value::Pair(true, 5) {
                    transferred = true;
                }
            }
        });
        assert!(transferred);
    }

    #[test]
    fn every_interleaving_satisfies_queue_spec_via_fq() {
        let m = model();
        let fq = FQMap::new(Q, E);
        let spec = SyncQueueSpec::new(Q);
        let w = Workload::new(vec![vec![put(5)], vec![take()], vec![put(6)]]);
        let mut execs = 0;
        Explorer::new(&m, w).run(|e| {
            execs += 1;
            let mapped = fq.apply(&e.trace);
            assert!(spec.accepts(&mapped), "mapped trace {mapped} illegal for {}", e.history);
            assert!(
                agrees_bool(&e.history, &mapped),
                "history {} disagrees with {}",
                e.history,
                mapped
            );
        });
        assert!(execs > 10);
    }

    #[test]
    fn two_producers_cannot_transfer_to_each_other() {
        let m = model();
        let w = Workload::new(vec![vec![put(1)], vec![put(2)]]);
        Explorer::new(&m, w).run(|e| {
            for op in e.history.operations() {
                assert_eq!(op.ret, Value::Bool(false), "puts must not succeed without a taker");
            }
        });
    }

    #[test]
    fn retry_budget_allows_second_chance() {
        // With one retry, a put can fail its first exchange and still pair
        // with a late taker.
        let m = SyncQueueModel::new(Q, E, 1);
        let w = Workload::new(vec![vec![put(5)], vec![take()]]);
        let mut transferred = false;
        Explorer::new(&m, w).run(|e| {
            if e.history.operations().iter().any(|o| o.ret == Value::Pair(true, 5)) {
                transferred = true;
            }
        });
        assert!(transferred);
    }
}
