//! Step-machine model of the Borowsky–Gafni one-shot **immediate atomic
//! snapshot** algorithm (PODC 1993) — the object Neiger used to motivate
//! set-linearizability (the paper's §6), here verified CAL with respect to
//! [`cal_specs::snapshot::ImmediateSnapshotSpec`] by exhaustive
//! exploration.
//!
//! The classic algorithm, for `n` processes:
//!
//! ```text
//! im_snap_i(v):
//!   value[i] := v
//!   level[i] := n + 1
//!   repeat
//!     level[i] := level[i] - 1
//!     S := { j | level[j] ≤ level[i] }      // one register read per j
//!   until |S| ≥ level[i]
//!   return { value[j] | j ∈ S }
//! ```
//!
//! Processes "descend" levels; a group that ends up stuck at the same
//! level forms a *block* — they all return the same view, which is exactly
//! the immediacy the CA specification demands. Every register access is
//! one scheduler step (the scan is a non-atomic collect, as in the
//! original algorithm).

use cal_core::{ObjectId, ThreadId, Value};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use cal_specs::snapshot::IM_SNAP;

/// Shared state: one value and one level register per process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SnapshotShared {
    /// `value[i]`: the value written by process `i`, if any.
    pub values: Vec<Option<i64>>,
    /// `level[i]`: the level of process `i` (`n + 1` = not started).
    pub levels: Vec<u8>,
}

/// Local state of one `im_snap` operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SnapshotLocal {
    /// About to write `value[i]`.
    WriteValue {
        /// The value to write.
        v: i64,
    },
    /// About to decrement `level[i]`.
    Descend,
    /// Scanning `level[j]` for `j = idx`, collecting the set so far.
    Scan {
        /// Next register to read.
        idx: usize,
        /// Process ids already observed at `level[j] ≤ level[i]`.
        below: Vec<usize>,
    },
    /// Scan complete: decide whether to return or descend again.
    Decide {
        /// Processes observed at or below our level.
        below: Vec<usize>,
    },
}

/// The immediate-snapshot model for `n` processes.
///
/// Thread `i` of the workload plays process `i`; each thread may run the
/// operation at most once (the algorithm is one-shot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmediateSnapshotModel {
    object: ObjectId,
    n: usize,
}

impl ImmediateSnapshotModel {
    /// Creates a model of the one-shot immediate snapshot `object` for `n`
    /// processes.
    pub fn new(object: ObjectId, n: usize) -> Self {
        ImmediateSnapshotModel { object, n }
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.n
    }
}

impl Model for ImmediateSnapshotModel {
    type Shared = SnapshotShared;
    type Local = SnapshotLocal;

    fn object(&self) -> ObjectId {
        self.object
    }

    fn init_shared(&self) -> SnapshotShared {
        SnapshotShared {
            values: vec![None; self.n],
            levels: vec![self.n as u8 + 1; self.n],
        }
    }

    fn on_invoke(&self, thread: ThreadId, request: &OpRequest) -> SnapshotLocal {
        assert_eq!(request.method, IM_SNAP, "snapshot only offers im_snap()");
        assert!((thread.0 as usize) < self.n, "thread beyond process count");
        let v = request.arg.as_int().expect("im_snap takes an integer");
        assert!((0..63).contains(&v), "values must be in 0..63");
        SnapshotLocal::WriteValue { v }
    }

    fn step(
        &self,
        shared: &mut SnapshotShared,
        local: &mut SnapshotLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<SnapshotLocal> {
        let i = ctx.thread.0 as usize;
        match local {
            SnapshotLocal::WriteValue { v } => {
                assert!(shared.values[i].is_none(), "im_snap is one-shot per process");
                shared.values[i] = Some(*v);
                ctx.label("WRITE");
                *local = SnapshotLocal::Descend;
                StepOutcome::Continue
            }
            SnapshotLocal::Descend => {
                shared.levels[i] -= 1;
                ctx.label("DESCEND");
                *local = SnapshotLocal::Scan { idx: 0, below: Vec::new() };
                StepOutcome::Continue
            }
            SnapshotLocal::Scan { idx, below } => {
                // One register read per step: the collect is not atomic.
                if shared.levels[*idx] <= shared.levels[i] {
                    below.push(*idx);
                }
                let next = *idx + 1;
                if next == self.n {
                    *local = SnapshotLocal::Decide { below: std::mem::take(below) };
                } else {
                    *idx = next;
                }
                StepOutcome::Continue
            }
            SnapshotLocal::Decide { below } => {
                if below.len() >= shared.levels[i] as usize {
                    // Return the view of everyone at or below our level.
                    // Their values are immutable once written.
                    let mut mask = 0i64;
                    for &j in below.iter() {
                        let v = shared.values[j]
                            .expect("a process with a lowered level has written");
                        mask |= 1 << v;
                    }
                    StepOutcome::Done(Value::Int(mask))
                } else {
                    *local = SnapshotLocal::Descend;
                    StepOutcome::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::check::is_cal;
    use cal_specs::snapshot::{view, ImmediateSnapshotSpec};

    const O: ObjectId = ObjectId(0);

    fn snap(v: i64) -> OpRequest {
        OpRequest::new(IM_SNAP, Value::Int(v))
    }

    #[test]
    fn lone_process_sees_itself() {
        let m = ImmediateSnapshotModel::new(O, 1);
        let w = Workload::new(vec![vec![snap(5)]]);
        Explorer::new(&m, w).run(|e| {
            assert_eq!(e.history.operations()[0].ret, Value::Int(view(&[5])));
        });
    }

    #[test]
    fn lone_process_among_absent_peers() {
        let m = ImmediateSnapshotModel::new(O, 3);
        let w = Workload::new(vec![vec![snap(5)]]);
        Explorer::new(&m, w).run(|e| {
            assert_eq!(e.history.operations()[0].ret, Value::Int(view(&[5])));
        });
    }

    #[test]
    fn two_processes_every_interleaving_is_cal() {
        let m = ImmediateSnapshotModel::new(O, 2);
        let spec = ImmediateSnapshotSpec::new(O, 2);
        let w = Workload::new(vec![vec![snap(1)], vec![snap(2)]]);
        let mut execs = 0;
        let mut symmetric = false;
        let mut ordered = false;
        Explorer::new(&m, w).run(|e| {
            execs += 1;
            assert!(is_cal(&e.history, &spec).unwrap(), "not CAL: {}", e.history);
            let rets: Vec<Value> = e.history.operations().iter().map(|o| o.ret).collect();
            if rets.iter().all(|&r| r == Value::Int(view(&[1, 2]))) {
                symmetric = true; // one block of two
            }
            if rets.contains(&Value::Int(view(&[1]))) || rets.contains(&Value::Int(view(&[2]))) {
                ordered = true; // two singleton blocks
            }
        });
        assert!(execs > 10);
        assert!(symmetric, "the simultaneous block outcome must be reachable");
        assert!(ordered, "the sequential outcome must be reachable");
    }

    #[test]
    fn three_processes_sampled_are_cal() {
        let m = ImmediateSnapshotModel::new(O, 3);
        let spec = ImmediateSnapshotSpec::new(O, 3);
        let w = Workload::new(vec![vec![snap(1)], vec![snap(2)], vec![snap(3)]]);
        Explorer::new(&m, w).sample(41, 1_500, |e| {
            assert!(is_cal(&e.history, &spec).unwrap(), "not CAL: {}", e.history);
        });
    }

    #[test]
    fn three_processes_budgeted_exhaustive_are_cal() {
        let m = ImmediateSnapshotModel::new(O, 3);
        let spec = ImmediateSnapshotSpec::new(O, 3);
        let w = Workload::new(vec![vec![snap(1)], vec![snap(2)], vec![snap(3)]]);
        let mut execs = 0u64;
        Explorer::new(&m, w).max_paths(40_000).run(|e| {
            execs += 1;
            assert!(is_cal(&e.history, &spec).unwrap(), "not CAL: {}", e.history);
        });
        assert!(execs > 100);
    }

    #[test]
    fn views_are_totally_ordered_by_containment() {
        // The snapshot property: any two returned views are comparable.
        let m = ImmediateSnapshotModel::new(O, 3);
        let w = Workload::new(vec![vec![snap(1)], vec![snap(2)], vec![snap(3)]]);
        Explorer::new(&m, w).sample(43, 1_500, |e| {
            let views: Vec<i64> =
                e.history.operations().iter().filter_map(|o| o.ret.as_int()).collect();
            for &a in &views {
                for &b in &views {
                    assert!(
                        a & b == a || a & b == b,
                        "incomparable views {a:#b} and {b:#b} in {}",
                        e.history
                    );
                }
            }
        });
    }

    #[test]
    fn own_value_always_in_view() {
        let m = ImmediateSnapshotModel::new(O, 3);
        let w = Workload::new(vec![vec![snap(1)], vec![snap(2)], vec![snap(3)]]);
        Explorer::new(&m, w).sample(47, 1_000, |e| {
            for op in e.history.operations() {
                let v = op.arg.as_int().unwrap();
                let mask = op.ret.as_int().unwrap();
                assert!(mask & (1 << v) != 0, "self-inclusion violated in {}", e.history);
            }
        });
    }
}
