//! Step-machine model of the elimination array of Fig. 2 (lines 1–6): `K`
//! exchangers, with the slot chosen nondeterministically (the scheduler
//! explores every choice, covering all outcomes of `random(0, K-1)`).

use cal_core::{ObjectId, ThreadId};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use crate::models::exchanger::{exchanger_step, ExchangerLocal, ExchangerShared};
use cal_specs::vocab::EXCHANGE;

/// Shared state: one [`ExchangerShared`] per slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ElimArrayShared {
    /// The exchanger slots `E[0..K]`.
    pub slots: Vec<ExchangerShared>,
}

/// Local state of one `AR.exchange(v)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ElimArrayLocal {
    /// Line 4: about to pick a random slot.
    Pick {
        /// The offered value.
        v: i64,
    },
    /// Line 5: running `E[slot].exchange(v)`.
    InSlot {
        /// The chosen slot.
        slot: usize,
        /// The exchanger-local state.
        inner: ExchangerLocal,
    },
}

/// The elimination array model: object `array` with `K` exchanger
/// subobjects whose ids are supplied explicitly (they appear in the logged
/// trace and are later renamed by `F_AR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElimArrayModel {
    array: ObjectId,
    slot_objects: Vec<ObjectId>,
}

impl ElimArrayModel {
    /// Creates an elimination array named `array` over exchangers named
    /// `slot_objects`.
    ///
    /// # Panics
    ///
    /// Panics if `slot_objects` is empty.
    pub fn new(array: ObjectId, slot_objects: Vec<ObjectId>) -> Self {
        assert!(!slot_objects.is_empty(), "elimination array needs at least one slot");
        ElimArrayModel { array, slot_objects }
    }

    /// The exchanger subobject ids.
    pub fn slot_objects(&self) -> &[ObjectId] {
        &self.slot_objects
    }

    /// Number of slots `K`.
    pub fn slots(&self) -> usize {
        self.slot_objects.len()
    }
}

/// One step of the elimination array algorithm, reusable by the elimination
/// stack model.
pub fn elim_array_step(
    model: &ElimArrayModel,
    shared: &mut ElimArrayShared,
    local: &mut ElimArrayLocal,
    ctx: &mut StepCtx<'_>,
) -> StepOutcome<ElimArrayLocal> {
    match local {
        ElimArrayLocal::Pick { v } => {
            // Line 4: int slot = random(0, K-1) — branch over all slots.
            let v = *v;
            StepOutcome::Choose(
                (0..model.slots())
                    .map(|slot| ElimArrayLocal::InSlot {
                        slot,
                        inner: ExchangerLocal::Init { v },
                    })
                    .collect(),
            )
        }
        ElimArrayLocal::InSlot { slot, inner } => {
            // Line 5: return E[slot].exchange(data).
            let object = model.slot_objects[*slot];
            match exchanger_step(object, &mut shared.slots[*slot], inner, ctx) {
                StepOutcome::Continue => StepOutcome::Continue,
                StepOutcome::Done(ret) => StepOutcome::Done(ret),
                StepOutcome::Stuck => StepOutcome::Stuck,
                StepOutcome::Choose(_) => unreachable!("exchanger never branches"),
            }
        }
    }
}

impl Model for ElimArrayModel {
    type Shared = ElimArrayShared;
    type Local = ElimArrayLocal;

    fn object(&self) -> ObjectId {
        self.array
    }

    fn init_shared(&self) -> ElimArrayShared {
        ElimArrayShared { slots: vec![ExchangerShared::new(); self.slots()] }
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> ElimArrayLocal {
        assert_eq!(request.method, EXCHANGE, "elimination array only offers exchange()");
        ElimArrayLocal::Pick { v: request.arg.as_int().expect("exchange takes an integer") }
    }

    fn step(
        &self,
        shared: &mut ElimArrayShared,
        local: &mut ElimArrayLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<ElimArrayLocal> {
        elim_array_step(self, shared, local, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::agree::agrees_bool;
    use cal_core::compose::TraceMap;
    use cal_core::spec::CaSpec;
    use cal_core::Value;
    use cal_specs::elim_array::{ElimArraySpec, FArMap};

    const AR: ObjectId = ObjectId(0);
    const E0: ObjectId = ObjectId(10);
    const E1: ObjectId = ObjectId(11);

    fn model(k: usize) -> ElimArrayModel {
        ElimArrayModel::new(AR, vec![E0, E1][..k].to_vec())
    }

    fn exchange(v: i64) -> OpRequest {
        OpRequest::new(EXCHANGE, Value::Int(v))
    }

    #[test]
    fn single_slot_behaves_like_exchanger() {
        let m = model(1);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        let mut swapped = false;
        Explorer::new(&m, w).run(|e| {
            for op in e.history.operations() {
                if op.ret == Value::Pair(true, 4) {
                    swapped = true;
                }
            }
        });
        assert!(swapped);
    }

    #[test]
    fn two_slots_swap_only_within_a_slot() {
        let m = model(2);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        let mut swapped = false;
        let mut both_failed = false;
        Explorer::new(&m, w).run(|e| {
            let rets: Vec<Value> = e.history.operations().iter().map(|o| o.ret).collect();
            if rets.iter().any(|r| matches!(r, Value::Pair(true, _))) {
                swapped = true;
            }
            if rets.iter().all(|r| matches!(r, Value::Pair(false, _))) {
                both_failed = true;
            }
        });
        assert!(swapped, "same-slot choices must swap in some schedule");
        assert!(both_failed, "different-slot choices must both fail");
    }

    #[test]
    fn far_mapped_trace_satisfies_array_spec_and_agrees() {
        let m = model(2);
        let far = FArMap::new(AR, vec![E0, E1]);
        let spec = ElimArraySpec::new(AR);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)], vec![exchange(5)]]);
        let mut execs = 0;
        Explorer::new(&m, w).run(|e| {
            execs += 1;
            // The elements are logged on E[i]; F_AR lifts them to AR.
            let mapped = far.apply(&e.trace);
            assert!(spec.accepts(&mapped), "mapped trace {mapped} illegal");
            // The AR-level history agrees with the lifted trace — the
            // paper's compositional argument, checked per interleaving.
            assert!(
                agrees_bool(&e.history, &mapped),
                "history {} does not agree with {}",
                e.history,
                mapped
            );
        });
        assert!(execs > 10);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_array_rejected() {
        ElimArrayModel::new(AR, vec![]);
    }
}
