//! Deliberately broken variants of the paper's algorithms, used to show
//! the verification tooling is not vacuous: for each injected bug, some
//! interleaving must be *rejected* — by the CAL search, by the
//! witness-agreement check, or by the rely/guarantee conformance check.

use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use crate::models::exchanger::{ExchangerLocal, ExchangerShared, Hole, Offer};
use crate::models::stack::{StackLocal, StackShared};
use cal_specs::vocab::{EXCHANGE, POP, PUSH};

/// The injectable exchanger bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangerBug {
    /// The matcher returns its *own* value instead of the partner's
    /// (line 33 returns `v` instead of `cur.data`) — a safety bug the CAL
    /// search rejects.
    ReturnOwnValue,
    /// The matcher writes `cur.hole` unconditionally instead of with a CAS
    /// (line 29) — two matchers can both claim one waiter, so one side of
    /// a "swap" is unreciprocated.
    MatchWithoutCas,
    /// The `XCHG` instrumentation logs the matcher's value on both sides
    /// of the swap element — the memory behaviour is correct but the
    /// auxiliary trace lies; caught by witness agreement and by the
    /// rely/guarantee conformance check, not by the history alone.
    WrongSwapLog,
}

/// An exchanger model with one injected bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyExchangerModel {
    object: ObjectId,
    bug: ExchangerBug,
}

impl FaultyExchangerModel {
    /// Creates a faulty exchanger named `object` exhibiting `bug`.
    pub fn new(object: ObjectId, bug: ExchangerBug) -> Self {
        FaultyExchangerModel { object, bug }
    }

    /// The injected bug.
    pub fn bug(&self) -> ExchangerBug {
        self.bug
    }
}

fn fail_element(object: ObjectId, t: ThreadId, v: i64) -> CaElement {
    CaElement::singleton(Operation::new(
        t,
        object,
        EXCHANGE,
        Value::Int(v),
        Value::Pair(false, v),
    ))
}

impl Model for FaultyExchangerModel {
    type Shared = ExchangerShared;
    type Local = ExchangerLocal;

    fn object(&self) -> ObjectId {
        self.object
    }

    fn init_shared(&self) -> ExchangerShared {
        ExchangerShared::new()
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> ExchangerLocal {
        assert_eq!(request.method, EXCHANGE);
        ExchangerLocal::Init { v: request.arg.as_int().expect("exchange takes an integer") }
    }

    fn step(
        &self,
        shared: &mut ExchangerShared,
        local: &mut ExchangerLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<ExchangerLocal> {
        let t = ctx.thread;
        let object = self.object;
        match *local {
            // The init, wait, pass and fail paths are the correct ones.
            ExchangerLocal::Init { v } => {
                let n = shared.offers.len();
                shared.offers.push(Offer { tid: t, data: v, hole: Hole::Null });
                if shared.g.is_none() {
                    shared.g = Some(n);
                    ctx.label("INIT");
                    *local = ExchangerLocal::Wait { n, v };
                } else {
                    *local = ExchangerLocal::ReadG { n, v };
                }
                StepOutcome::Continue
            }
            ExchangerLocal::Wait { n, v } => {
                *local = ExchangerLocal::TryPass { n, v };
                StepOutcome::Continue
            }
            ExchangerLocal::TryPass { n, v } => match shared.offers[n].hole {
                Hole::Null => {
                    shared.offers[n].hole = Hole::Fail;
                    ctx.label("PASS");
                    *local = ExchangerLocal::FailReturn { n, v };
                    StepOutcome::Continue
                }
                Hole::Matched(m) => StepOutcome::Done(Value::Pair(true, shared.offers[m].data)),
                Hole::Fail => unreachable!("only the owner passes"),
            },
            ExchangerLocal::FailReturn { n: _, v } => {
                ctx.label("FAIL");
                ctx.log(fail_element(object, t, v));
                StepOutcome::Done(Value::Pair(false, v))
            }
            ExchangerLocal::ReadG { n, v } => match shared.g {
                Some(cur) => {
                    *local = ExchangerLocal::TryXchg { n, v, cur };
                    StepOutcome::Continue
                }
                None => {
                    ctx.label("FAIL");
                    ctx.log(fail_element(object, t, v));
                    StepOutcome::Done(Value::Pair(false, v))
                }
            },
            ExchangerLocal::TryXchg { n, v, cur } => {
                let cas_ok = match self.bug {
                    // BUG: unconditional write instead of CAS.
                    ExchangerBug::MatchWithoutCas => true,
                    _ => shared.offers[cur].hole == Hole::Null,
                };
                let s = if cas_ok {
                    let partner = shared.offers[cur];
                    shared.offers[cur].hole = Hole::Matched(n);
                    ctx.label("XCHG");
                    let logged = match self.bug {
                        // BUG: both sides of the element carry `v`.
                        ExchangerBug::WrongSwapLog => CaElement::pair(
                            Operation::new(
                                partner.tid,
                                object,
                                EXCHANGE,
                                Value::Int(partner.data),
                                Value::Pair(true, v),
                            ),
                            Operation::new(t, object, EXCHANGE, Value::Int(v), Value::Pair(true, v)),
                        )
                        .expect("distinct threads"),
                        _ => CaElement::pair(
                            Operation::new(
                                partner.tid,
                                object,
                                EXCHANGE,
                                Value::Int(partner.data),
                                Value::Pair(true, v),
                            ),
                            Operation::new(
                                t,
                                object,
                                EXCHANGE,
                                Value::Int(v),
                                Value::Pair(true, partner.data),
                            ),
                        )
                        .expect("distinct threads"),
                    };
                    ctx.log(logged);
                    true
                } else {
                    false
                };
                *local = ExchangerLocal::Clean { n, v, cur, s };
                StepOutcome::Continue
            }
            ExchangerLocal::Clean { n, v, cur, s } => {
                if shared.g == Some(cur) {
                    shared.g = None;
                    ctx.label("CLEAN");
                }
                *local = ExchangerLocal::Finish { n, v, cur, s };
                StepOutcome::Continue
            }
            ExchangerLocal::Finish { n: _, v, cur, s } => {
                if s {
                    match self.bug {
                        // BUG: return own value instead of the partner's.
                        ExchangerBug::ReturnOwnValue => StepOutcome::Done(Value::Pair(true, v)),
                        _ => StepOutcome::Done(Value::Pair(true, shared.offers[cur].data)),
                    }
                } else {
                    ctx.label("FAIL");
                    ctx.log(fail_element(object, t, v));
                    StepOutcome::Done(Value::Pair(false, v))
                }
            }
        }
    }
}

/// The injectable stack bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackBug {
    /// `pop` writes `top` unconditionally instead of with a CAS — a racing
    /// push between the read and the write is lost.
    PopWithoutCas,
    /// `pop` reports the value of the cell *below* the popped one.
    PopWrongValue,
}

/// A failing stack with one injected bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyStackModel {
    object: ObjectId,
    bug: StackBug,
}

impl FaultyStackModel {
    /// Creates a faulty failing stack named `object` exhibiting `bug`.
    pub fn new(object: ObjectId, bug: StackBug) -> Self {
        FaultyStackModel { object, bug }
    }
}

impl Model for FaultyStackModel {
    type Shared = StackShared;
    type Local = StackLocal;

    fn object(&self) -> ObjectId {
        self.object
    }

    fn init_shared(&self) -> StackShared {
        StackShared::new()
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> StackLocal {
        match request.method {
            PUSH => StackLocal::PushRead { v: request.arg.as_int().expect("push takes an int") },
            POP => StackLocal::PopRead,
            other => panic!("stack does not offer {other}"),
        }
    }

    fn step(
        &self,
        shared: &mut StackShared,
        local: &mut StackLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<StackLocal> {
        use crate::models::stack::Cell;
        let t = ctx.thread;
        match *local {
            StackLocal::PushRead { v } => {
                let h = shared.top;
                let n = shared.cells.len();
                shared.cells.push(Cell { data: v, next: h });
                *local = StackLocal::PushCas { v, h, n };
                StepOutcome::Continue
            }
            StackLocal::PushCas { v, h, n } => {
                if shared.top == h {
                    shared.top = Some(n);
                    ctx.label("PUSH");
                    ctx.log(CaElement::singleton(Operation::new(
                        t,
                        self.object,
                        PUSH,
                        Value::Int(v),
                        Value::Bool(true),
                    )));
                    StepOutcome::Done(Value::Bool(true))
                } else {
                    ctx.log(CaElement::singleton(Operation::new(
                        t,
                        self.object,
                        PUSH,
                        Value::Int(v),
                        Value::Bool(false),
                    )));
                    StepOutcome::Done(Value::Bool(false))
                }
            }
            StackLocal::PopRead => match shared.top {
                None => {
                    ctx.log(CaElement::singleton(Operation::new(
                        t,
                        self.object,
                        POP,
                        Value::Unit,
                        Value::Pair(false, 0),
                    )));
                    StepOutcome::Done(Value::Pair(false, 0))
                }
                Some(h) => {
                    *local = StackLocal::PopCas { h };
                    StepOutcome::Continue
                }
            },
            StackLocal::PopCas { h } => {
                let n = shared.cells[h].next;
                let cas_ok = match self.bug {
                    StackBug::PopWithoutCas => true, // BUG: no comparison
                    StackBug::PopWrongValue => shared.top == Some(h),
                };
                if cas_ok {
                    shared.top = n;
                    let v = match self.bug {
                        // BUG: report the next cell's value (0 if none).
                        StackBug::PopWrongValue => {
                            n.map(|i| shared.cells[i].data).unwrap_or(0)
                        }
                        _ => shared.cells[h].data,
                    };
                    ctx.label("POP");
                    ctx.log(CaElement::singleton(Operation::new(
                        t,
                        self.object,
                        POP,
                        Value::Unit,
                        Value::Pair(true, v),
                    )));
                    StepOutcome::Done(Value::Pair(true, v))
                } else {
                    ctx.log(CaElement::singleton(Operation::new(
                        t,
                        self.object,
                        POP,
                        Value::Unit,
                        Value::Pair(false, 0),
                    )));
                    StepOutcome::Done(Value::Pair(false, 0))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::agree::agrees_bool;
    use cal_core::check::is_cal;
    use cal_core::seqlin::is_linearizable;
    use cal_core::spec::CaSpec;
    use cal_specs::exchanger::ExchangerSpec;
    use cal_specs::stack::StackSpec;

    const E: ObjectId = ObjectId(0);

    fn exchange(v: i64) -> OpRequest {
        OpRequest::new(EXCHANGE, Value::Int(v))
    }

    #[test]
    fn return_own_value_is_caught_by_cal_search() {
        let model = FaultyExchangerModel::new(E, ExchangerBug::ReturnOwnValue);
        let spec = ExchangerSpec::new(E);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        let mut rejected = false;
        Explorer::new(&model, w).run(|e| {
            if !is_cal(&e.history, &spec).unwrap() {
                rejected = true;
            }
        });
        assert!(rejected, "the bug must surface in some schedule");
        assert_eq!(model.bug(), ExchangerBug::ReturnOwnValue);
    }

    #[test]
    fn match_without_cas_is_caught() {
        // Three threads: two matchers can both claim the one waiter.
        let model = FaultyExchangerModel::new(E, ExchangerBug::MatchWithoutCas);
        let spec = ExchangerSpec::new(E);
        let w = Workload::new(vec![vec![exchange(1)], vec![exchange(2)], vec![exchange(3)]]);
        let mut rejected = false;
        Explorer::new(&model, w).max_paths(100_000).run(|e| {
            if !is_cal(&e.history, &spec).unwrap() {
                rejected = true;
            }
        });
        assert!(rejected, "double-match must break CAL in some schedule");
    }

    #[test]
    fn wrong_swap_log_is_caught_by_witness_agreement_not_by_history() {
        let model = FaultyExchangerModel::new(E, ExchangerBug::WrongSwapLog);
        let spec = ExchangerSpec::new(E);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        let mut witness_rejected = false;
        Explorer::new(&model, w).run(|e| {
            // The memory behaviour is the correct algorithm's, so the
            // history itself stays CAL…
            assert!(is_cal(&e.history, &spec).unwrap());
            // …but the lying instrumentation is caught by the agreement
            // check (and would invalidate any proof built on the trace).
            if !agrees_bool(&e.history, &e.trace) || !spec.accepts(&e.trace) {
                witness_rejected = true;
            }
        });
        assert!(witness_rejected, "the lying trace must be caught");
    }

    #[test]
    fn wrong_swap_log_violates_rg_conformance() {
        use cal_rg_stub::check;
        let model = FaultyExchangerModel::new(E, ExchangerBug::WrongSwapLog);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        let mut violated = false;
        Explorer::new(&model, w).record_transitions(true).run(|e| {
            if check(E, e).is_err() {
                violated = true;
            }
        });
        assert!(violated, "the XCHG action's trace clause must be violated");
    }

    /// Minimal local re-statement of the XCHG conformance clause, to avoid
    /// a circular dev-dependency on `cal-rg` (which depends on this
    /// crate). The full checker lives in `cal-rg`; integration tests there
    /// cover the complete obligation set.
    mod cal_rg_stub {
        use super::*;
        use crate::sched::Execution;

        pub fn check(
            object: ObjectId,
            e: &Execution<ExchangerShared, ExchangerLocal>,
        ) -> Result<(), ()> {
            for tr in &e.transitions {
                if tr.label == Some("XCHG") {
                    let delta = &e.trace.elements()[tr.trace_before..tr.trace_after];
                    let [el] = delta else { return Err(()) };
                    let [a, b] = el.ops() else { return Err(()) };
                    // A legal swap element crosses the values.
                    let (Some((true, ra)), Some((true, rb))) =
                        (a.ret.as_pair(), b.ret.as_pair())
                    else {
                        return Err(());
                    };
                    if a.arg != Value::Int(rb) || b.arg != Value::Int(ra) {
                        return Err(());
                    }
                    let _ = object;
                }
            }
            Ok(())
        }
    }

    #[test]
    fn pop_without_cas_is_caught() {
        // The incriminating schedule: two concurrent pops both read the
        // same top cell and, lacking the CAS, both return its value — a
        // duplicated pop no stack specification admits. (A *lost push* is
        // unobservable under the failing spec, which allows any pop to
        // fail spuriously; the duplication is the safety violation.)
        let model = FaultyStackModel::new(E, StackBug::PopWithoutCas);
        let spec = StackSpec::failing(E);
        let w = Workload::new(vec![
            vec![OpRequest::new(PUSH, Value::Int(1))],
            vec![OpRequest::new(POP, Value::Unit)],
            vec![OpRequest::new(POP, Value::Unit)],
        ]);
        let mut rejected = false;
        Explorer::new(&model, w).max_paths(100_000).run(|e| {
            if !is_linearizable(&e.history, &spec).unwrap() {
                rejected = true;
            }
        });
        assert!(rejected, "duplicated pop must break linearizability in some schedule");
    }

    #[test]
    fn pop_wrong_value_is_caught() {
        let model = FaultyStackModel::new(E, StackBug::PopWrongValue);
        let spec = StackSpec::failing(E);
        let w = Workload::new(vec![
            vec![OpRequest::new(PUSH, Value::Int(1)), OpRequest::new(PUSH, Value::Int(2))],
            vec![OpRequest::new(POP, Value::Unit)],
        ]);
        let mut rejected = false;
        Explorer::new(&model, w).max_paths(100_000).run(|e| {
            if !is_linearizable(&e.history, &spec).unwrap() {
                rejected = true;
            }
        });
        assert!(rejected, "wrong pop value must break linearizability");
    }

    #[test]
    fn correct_paths_of_faulty_models_still_pass() {
        // A faulty model that never hits its bug behaves correctly: a lone
        // failed exchange is still CAL.
        for bug in [
            ExchangerBug::ReturnOwnValue,
            ExchangerBug::MatchWithoutCas,
            ExchangerBug::WrongSwapLog,
        ] {
            let model = FaultyExchangerModel::new(E, bug);
            let spec = ExchangerSpec::new(E);
            let w = Workload::new(vec![vec![exchange(9)]]);
            Explorer::new(&model, w).run(|e| {
                assert!(is_cal(&e.history, &spec).unwrap());
                assert!(agrees_bool(&e.history, &e.trace));
            });
        }
    }
}
