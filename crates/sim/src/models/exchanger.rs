//! Step-machine model of the wait-free exchanger of Fig. 1.
//!
//! Every step is one shared access, matching the figure's lines:
//!
//! - `Init` — allocate the `Offer` (line 13) and `CAS(g, null, n)` (line 15);
//! - `Wait` — the `sleep(50)` of line 17, modelled as a single
//!   schedulable no-op (the scheduler explores both "partner arrives
//!   during the wait" and "wait elapses first");
//! - `TryPass` — `CAS(n.hole, null, fail)` (line 18) and the returns of
//!   lines 20/22;
//! - `ReadG` — `cur = g` (line 25) and the null test of line 27;
//! - `TryXchg` — `CAS(cur.hole, null, n)` (line 29), logging the paper's
//!   `XCHG` trace element on success;
//! - `Clean` — the unconditional `CAS(g, cur, null)` (line 31);
//! - `Finish` — the returns of lines 33/35, logging `FAIL` on line 35.
//!
//! The trace instrumentation follows §5.1: the swap element
//! `E.swap(cur.tid, cur.data, tid, n.data)` is appended at the successful
//! CAS of line 29, and failure singletons at the two failing returns.

use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use cal_specs::vocab::EXCHANGE;

/// The `hole` field of an offer: `null`, the `fail` sentinel, or a match
/// with another offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Hole {
    /// Initial state: open for matching.
    #[default]
    Null,
    /// The owner gave up (`hole = fail`).
    Fail,
    /// Matched with the offer at this arena index.
    Matched(usize),
}

/// One `Offer` object (Fig. 1, lines 1–7), including the auxiliary `tid`
/// field the proof adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Offer {
    /// The allocating thread (auxiliary state, §5.1).
    pub tid: ThreadId,
    /// The value offered for exchange.
    pub data: i64,
    /// The hole pointer.
    pub hole: Hole,
}

/// Shared state of one exchanger: an offer arena plus the global slot `g`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ExchangerShared {
    /// All offers ever allocated, addressed by index.
    pub offers: Vec<Offer>,
    /// The global offer slot `g` (line 9).
    pub g: Option<usize>,
}

impl ExchangerShared {
    /// Creates the initial state: empty arena, `g = null`.
    pub fn new() -> Self {
        ExchangerShared::default()
    }
}

/// Local state (program counter and registers) of one `exchange(v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangerLocal {
    /// Before line 13: about to allocate and try the init CAS.
    Init {
        /// The offered value.
        v: i64,
    },
    /// Line 17: waiting for a partner.
    Wait {
        /// Own offer index.
        n: usize,
        /// The offered value.
        v: i64,
    },
    /// Line 18: about to CAS own hole to `fail`.
    TryPass {
        /// Own offer index.
        n: usize,
        /// The offered value.
        v: i64,
    },
    /// Between lines 18 and 20: the pass CAS succeeded; about to log the
    /// failure and return.
    FailReturn {
        /// Own offer index.
        n: usize,
        /// The offered value.
        v: i64,
    },
    /// Line 25: about to read `g`.
    ReadG {
        /// Own offer index.
        n: usize,
        /// The offered value.
        v: i64,
    },
    /// Line 29: about to CAS `cur.hole` from `null` to own offer.
    TryXchg {
        /// Own offer index.
        n: usize,
        /// The offered value.
        v: i64,
        /// The offer read from `g`.
        cur: usize,
    },
    /// Line 31: about to clean `g`.
    Clean {
        /// Own offer index.
        n: usize,
        /// The offered value.
        v: i64,
        /// The offer read from `g`.
        cur: usize,
        /// Whether the exchange CAS succeeded (`s` in Fig. 1).
        s: bool,
    },
    /// Lines 32–35: about to return.
    Finish {
        /// Own offer index.
        n: usize,
        /// The offered value.
        v: i64,
        /// The offer read from `g`.
        cur: usize,
        /// Whether the exchange CAS succeeded.
        s: bool,
    },
}

/// The exchanger model for object `object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangerModel {
    object: ObjectId,
}

impl ExchangerModel {
    /// Creates a model of the exchanger named `object`.
    pub fn new(object: ObjectId) -> Self {
        ExchangerModel { object }
    }

    /// The modelled object.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }
}

/// One step of the exchanger algorithm, reusable by composite models
/// (elimination array, synchronous queue).
pub fn exchanger_step(
    object: ObjectId,
    shared: &mut ExchangerShared,
    local: &mut ExchangerLocal,
    ctx: &mut StepCtx<'_>,
) -> StepOutcome<ExchangerLocal> {
    let t = ctx.thread;
    match *local {
        ExchangerLocal::Init { v } => {
            // Line 13: Offer n = new Offer(tid, v); line 15: CAS(g, null, n).
            let n = shared.offers.len();
            shared.offers.push(Offer { tid: t, data: v, hole: Hole::Null });
            if shared.g.is_none() {
                shared.g = Some(n);
                ctx.label("INIT");
                *local = ExchangerLocal::Wait { n, v };
            } else {
                *local = ExchangerLocal::ReadG { n, v };
            }
            StepOutcome::Continue
        }
        ExchangerLocal::Wait { n, v } => {
            // Line 17: sleep(50) — one schedulable no-op.
            *local = ExchangerLocal::TryPass { n, v };
            StepOutcome::Continue
        }
        ExchangerLocal::TryPass { n, v } => {
            // Line 18: if (CAS(n.hole, null, fail)).
            match shared.offers[n].hole {
                Hole::Null => {
                    shared.offers[n].hole = Hole::Fail;
                    ctx.label("PASS");
                    *local = ExchangerLocal::FailReturn { n, v };
                    StepOutcome::Continue
                }
                Hole::Matched(m) => {
                    // Line 22: return (true, n.hole.data); the swap was
                    // already logged by the partner's XCHG.
                    StepOutcome::Done(Value::Pair(true, shared.offers[m].data))
                }
                Hole::Fail => unreachable!("only the owner sets fail, and it then returns"),
            }
        }
        ExchangerLocal::FailReturn { n: _, v } => {
            // Line 20: return (false, v) — the FAIL trace element is the
            // auxiliary assignment at the return statement (§5.1).
            ctx.label("FAIL");
            ctx.log(fail_element(object, t, v));
            StepOutcome::Done(Value::Pair(false, v))
        }
        ExchangerLocal::ReadG { n, v } => {
            // Line 25: cur = g; line 27: if (cur != null).
            match shared.g {
                Some(cur) => {
                    *local = ExchangerLocal::TryXchg { n, v, cur };
                    StepOutcome::Continue
                }
                None => {
                    // Line 35: return (false, v).
                    ctx.label("FAIL");
                    ctx.log(fail_element(object, t, v));
                    StepOutcome::Done(Value::Pair(false, v))
                }
            }
        }
        ExchangerLocal::TryXchg { n, v, cur } => {
            // Line 29: s = CAS(cur.hole, null, n).
            let s = if shared.offers[cur].hole == Hole::Null {
                shared.offers[cur].hole = Hole::Matched(n);
                ctx.label("XCHG");
                // §5.1: log 𝒯 := 𝒯 · E.swap(cur.tid, cur.data, tid, n.data).
                let partner = shared.offers[cur];
                ctx.log(swap_element_for(object, partner.tid, partner.data, t, v));
                true
            } else {
                false
            };
            *local = ExchangerLocal::Clean { n, v, cur, s };
            StepOutcome::Continue
        }
        ExchangerLocal::Clean { n, v, cur, s } => {
            // Line 31: CAS(g, cur, null) — unconditional help.
            if shared.g == Some(cur) {
                shared.g = None;
                ctx.label("CLEAN");
            }
            *local = ExchangerLocal::Finish { n, v, cur, s };
            StepOutcome::Continue
        }
        ExchangerLocal::Finish { n: _, v, cur, s } => {
            if s {
                // Line 33: return (true, cur.data).
                StepOutcome::Done(Value::Pair(true, shared.offers[cur].data))
            } else {
                // Line 35: return (false, v).
                ctx.label("FAIL");
                ctx.log(fail_element(object, t, v));
                StepOutcome::Done(Value::Pair(false, v))
            }
        }
    }
}

fn fail_element(object: ObjectId, t: ThreadId, v: i64) -> CaElement {
    CaElement::singleton(Operation::new(
        t,
        object,
        EXCHANGE,
        Value::Int(v),
        Value::Pair(false, v),
    ))
}

fn swap_element_for(
    object: ObjectId,
    waiter: ThreadId,
    waiter_value: i64,
    matcher: ThreadId,
    matcher_value: i64,
) -> CaElement {
    CaElement::pair(
        Operation::new(
            waiter,
            object,
            EXCHANGE,
            Value::Int(waiter_value),
            Value::Pair(true, matcher_value),
        ),
        Operation::new(
            matcher,
            object,
            EXCHANGE,
            Value::Int(matcher_value),
            Value::Pair(true, waiter_value),
        ),
    )
    .expect("waiter and matcher are distinct threads")
}

impl Model for ExchangerModel {
    type Shared = ExchangerShared;
    type Local = ExchangerLocal;

    fn object(&self) -> ObjectId {
        self.object
    }

    fn init_shared(&self) -> ExchangerShared {
        ExchangerShared::new()
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> ExchangerLocal {
        assert_eq!(request.method, EXCHANGE, "exchanger only offers exchange()");
        let v = request.arg.as_int().expect("exchange takes an integer");
        ExchangerLocal::Init { v }
    }

    fn step(
        &self,
        shared: &mut ExchangerShared,
        local: &mut ExchangerLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<ExchangerLocal> {
        exchanger_step(self.object, shared, local, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::agree::agrees_bool;
    use cal_core::check::is_cal;
    use cal_core::spec::CaSpec;
    use cal_specs::exchanger::ExchangerSpec;

    const E: ObjectId = ObjectId(0);

    fn exchange(v: i64) -> OpRequest {
        OpRequest::new(EXCHANGE, Value::Int(v))
    }

    #[test]
    fn lone_exchange_always_fails() {
        let m = ExchangerModel::new(E);
        let w = Workload::new(vec![vec![exchange(3)]]);
        let mut rets = Vec::new();
        Explorer::new(&m, w).run(|e| {
            rets.push(e.history.operations()[0].ret);
        });
        assert!(!rets.is_empty());
        assert!(rets.iter().all(|&r| r == Value::Pair(false, 3)));
    }

    #[test]
    fn two_threads_can_swap_and_can_fail() {
        let m = ExchangerModel::new(E);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        let mut swapped = false;
        let mut failed = false;
        let stats = Explorer::new(&m, w).run(|e| {
            for op in e.history.operations() {
                match op.ret {
                    Value::Pair(true, _) => swapped = true,
                    Value::Pair(false, _) => failed = true,
                    _ => panic!("unexpected return {:?}", op.ret),
                }
            }
        });
        assert!(stats.paths > 1);
        assert!(swapped, "some interleaving must swap");
        assert!(failed, "some interleaving must fail");
    }

    #[test]
    fn every_interleaving_is_cal_and_trace_is_witness() {
        let m = ExchangerModel::new(E);
        let spec = ExchangerSpec::new(E);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)], vec![exchange(7)]]);
        let mut execs = 0u64;
        Explorer::new(&m, w).run(|e| {
            execs += 1;
            // The logged trace is accepted by the spec…
            assert!(spec.accepts(&e.trace), "illegal trace {} for {}", e.trace, e.history);
            // …and explains the client-visible history.
            assert!(
                agrees_bool(&e.history, &e.trace),
                "trace {} does not explain history {}",
                e.trace,
                e.history
            );
            // Cross-check with the full CAL search.
            assert!(is_cal(&e.history, &spec).unwrap());
        });
        assert!(execs > 10);
    }

    #[test]
    fn swap_returns_cross_values() {
        let m = ExchangerModel::new(E);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        Explorer::new(&m, w).run(|e| {
            let ops = e.history.operations();
            if ops.iter().any(|o| matches!(o.ret, Value::Pair(true, _))) {
                // If anyone succeeded, both did, with crossed values.
                let a = ops.iter().find(|o| o.thread == ThreadId(0)).unwrap();
                let b = ops.iter().find(|o| o.thread == ThreadId(1)).unwrap();
                assert_eq!(a.ret, Value::Pair(true, 4));
                assert_eq!(b.ret, Value::Pair(true, 3));
            }
        });
    }

    #[test]
    fn sequential_back_to_back_exchanges_fail() {
        // One thread exchanging twice: no partner ever present.
        let m = ExchangerModel::new(E);
        let w = Workload::new(vec![vec![exchange(1), exchange(2)]]);
        Explorer::new(&m, w).run(|e| {
            assert!(e
                .history
                .operations()
                .iter()
                .all(|o| matches!(o.ret, Value::Pair(false, _))));
        });
    }

    #[test]
    fn g_is_cleared_after_all_operations_finish() {
        let m = ExchangerModel::new(E);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        Explorer::new(&m, w).run(|e| {
            // After a complete run, any published offer is matched or failed.
            if let Some(g) = e.final_shared.g {
                assert_ne!(e.final_shared.offers[g].hole, Hole::Null);
            }
        });
    }
}
