//! Step-machine model of a Scherer–Scott style dual stack (§6): `pop` on
//! an empty stack installs a *reservation* node and waits; a `push` that
//! finds a reservation on top fulfills it instead of pushing data. The
//! fulfillment CAS is the single CA-linearization point of *both*
//! operations, logged as one pair element — the specification style the
//! paper advocates over the original two-linearization-point treatment.

use cal_core::{CaElement, ObjectId, ThreadId, Value};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use cal_specs::dual_stack::{dual_pop_op, dual_push_op, fulfillment_element};
use cal_specs::vocab::{POP, PUSH};

/// What a dual-stack node holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DualCell {
    /// A data value waiting to be popped.
    Data(i64),
    /// A waiting pop's reservation, with its owner and fulfillment slot.
    Reservation {
        /// The waiting popper.
        owner: ThreadId,
        /// The value a fulfilling push installed, if any.
        filled: Option<i64>,
    },
}

/// One node of the dual stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DualNode {
    /// The payload.
    pub cell: DualCell,
    /// The next node down.
    pub next: Option<usize>,
}

/// Shared state of the dual stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DualStackShared {
    /// The node arena.
    pub nodes: Vec<DualNode>,
    /// The top of the stack.
    pub top: Option<usize>,
}

/// Local state of one dual-stack operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DualStackLocal {
    /// `push(v)`: read `top` and decide between pushing and fulfilling.
    PushRead {
        /// The value to push.
        v: i64,
        /// Remaining retries.
        tries: u8,
    },
    /// `push(v)`: CAS a data node on top of the observed `h`.
    PushCas {
        /// The value to push.
        v: i64,
        /// Observed top.
        h: Option<usize>,
        /// The allocated data node.
        n: usize,
        /// Remaining retries.
        tries: u8,
    },
    /// `push(v)`: try to fulfill the reservation node `r`.
    Fulfill {
        /// The value to hand over.
        v: i64,
        /// The reservation node observed on top.
        r: usize,
        /// Remaining retries.
        tries: u8,
    },
    /// `push`: pop the fulfilled reservation off the stack (helping), then
    /// return.
    PopFulfilled {
        /// The fulfilled reservation node.
        r: usize,
    },
    /// `pop()`: read `top` and decide between taking data and reserving.
    PopRead {
        /// Remaining retries.
        tries: u8,
    },
    /// `pop()`: CAS the observed data node `h` off the stack.
    PopCas {
        /// Observed top (a data node).
        h: usize,
        /// Remaining retries.
        tries: u8,
    },
    /// `pop()`: CAS own reservation `r` onto the observed top `h`.
    Reserve {
        /// Observed top.
        h: Option<usize>,
        /// The allocated reservation node.
        r: usize,
        /// Remaining retries.
        tries: u8,
    },
    /// `pop()`: wait for the reservation to be filled.
    WaitFill {
        /// Own reservation node.
        r: usize,
        /// Remaining wait steps before giving up (operation stays
        /// pending).
        patience: u8,
    },
}

/// The dual stack model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualStackModel {
    object: ObjectId,
    max_tries: u8,
    patience: u8,
}

impl DualStackModel {
    /// Creates a dual stack named `object`, retrying contended CASes up to
    /// `max_tries` times and letting a waiting pop poll its reservation
    /// `patience` times before parking forever.
    pub fn new(object: ObjectId, max_tries: u8, patience: u8) -> Self {
        DualStackModel { object, max_tries, patience }
    }

    fn retry_push(&self, local: &mut DualStackLocal, v: i64, tries: u8) -> StepOutcome<DualStackLocal> {
        if tries == 0 {
            return StepOutcome::Stuck;
        }
        *local = DualStackLocal::PushRead { v, tries: tries - 1 };
        StepOutcome::Continue
    }

    fn retry_pop(&self, local: &mut DualStackLocal, tries: u8) -> StepOutcome<DualStackLocal> {
        if tries == 0 {
            return StepOutcome::Stuck;
        }
        *local = DualStackLocal::PopRead { tries: tries - 1 };
        StepOutcome::Continue
    }
}

impl Model for DualStackModel {
    type Shared = DualStackShared;
    type Local = DualStackLocal;

    fn object(&self) -> ObjectId {
        self.object
    }

    fn init_shared(&self) -> DualStackShared {
        DualStackShared::default()
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> DualStackLocal {
        match request.method {
            PUSH => DualStackLocal::PushRead {
                v: request.arg.as_int().expect("push takes an integer"),
                tries: self.max_tries,
            },
            POP => DualStackLocal::PopRead { tries: self.max_tries },
            other => panic!("dual stack does not offer {other}"),
        }
    }

    fn step(
        &self,
        shared: &mut DualStackShared,
        local: &mut DualStackLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<DualStackLocal> {
        let t = ctx.thread;
        match *local {
            DualStackLocal::PushRead { v, tries } => {
                match shared.top {
                    Some(h) if matches!(shared.nodes[h].cell, DualCell::Reservation { .. }) => {
                        *local = DualStackLocal::Fulfill { v, r: h, tries };
                    }
                    h => {
                        let n = shared.nodes.len();
                        shared.nodes.push(DualNode { cell: DualCell::Data(v), next: h });
                        *local = DualStackLocal::PushCas { v, h, n, tries };
                    }
                }
                StepOutcome::Continue
            }
            DualStackLocal::PushCas { v, h, n, tries } => {
                if shared.top == h {
                    shared.top = Some(n);
                    ctx.label("PUSH");
                    ctx.log(CaElement::singleton(dual_push_op(self.object, t, v)));
                    StepOutcome::Done(Value::Unit)
                } else {
                    self.retry_push(local, v, tries)
                }
            }
            DualStackLocal::Fulfill { v, r, tries } => {
                match &mut shared.nodes[r].cell {
                    DualCell::Reservation { owner, filled } if filled.is_none() => {
                        let popper = *owner;
                        *filled = Some(v);
                        ctx.label("FULFILL");
                        // The single CA-linearization point of both ops.
                        ctx.log(fulfillment_element(self.object, t, v, popper));
                        *local = DualStackLocal::PopFulfilled { r };
                        StepOutcome::Continue
                    }
                    _ => self.retry_push(local, v, tries),
                }
            }
            DualStackLocal::PopFulfilled { r } => {
                // Helping: unlink the fulfilled reservation if still on top.
                if shared.top == Some(r) {
                    shared.top = shared.nodes[r].next;
                    ctx.label("UNLINK");
                }
                StepOutcome::Done(Value::Unit)
            }
            DualStackLocal::PopRead { tries } => {
                match shared.top {
                    Some(h) if matches!(shared.nodes[h].cell, DualCell::Data(_)) => {
                        *local = DualStackLocal::PopCas { h, tries };
                    }
                    h => {
                        // Empty or reservations on top: add our own.
                        let r = shared.nodes.len();
                        shared.nodes.push(DualNode {
                            cell: DualCell::Reservation { owner: t, filled: None },
                            next: h,
                        });
                        *local = DualStackLocal::Reserve { h, r, tries };
                    }
                }
                StepOutcome::Continue
            }
            DualStackLocal::PopCas { h, tries } => {
                if shared.top == Some(h) {
                    shared.top = shared.nodes[h].next;
                    let DualCell::Data(v) = shared.nodes[h].cell else {
                        unreachable!("PopCas targets data nodes");
                    };
                    ctx.label("POP");
                    ctx.log(CaElement::singleton(dual_pop_op(self.object, t, v)));
                    StepOutcome::Done(Value::Int(v))
                } else {
                    self.retry_pop(local, tries)
                }
            }
            DualStackLocal::Reserve { h, r, tries } => {
                if shared.top == h {
                    shared.top = Some(r);
                    ctx.label("RESERVE");
                    *local = DualStackLocal::WaitFill { r, patience: self.patience };
                    StepOutcome::Continue
                } else {
                    self.retry_pop(local, tries)
                }
            }
            DualStackLocal::WaitFill { r, patience } => {
                let DualCell::Reservation { filled, .. } = shared.nodes[r].cell else {
                    unreachable!("own reservation");
                };
                match filled {
                    Some(v) => {
                        // The fulfiller logged the pair element; unlink if
                        // still linked (helping may have done it).
                        if shared.top == Some(r) {
                            shared.top = shared.nodes[r].next;
                            ctx.label("UNLINK");
                        }
                        StepOutcome::Done(Value::Int(v))
                    }
                    None if patience == 0 => StepOutcome::Stuck,
                    None => {
                        *local = DualStackLocal::WaitFill { r, patience: patience - 1 };
                        StepOutcome::Continue
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::agree::agrees_bool;
    use cal_core::check::is_cal;
    use cal_core::spec::CaSpec;
    use cal_specs::dual_stack::DualStackSpec;

    const S: ObjectId = ObjectId(0);

    fn push(v: i64) -> OpRequest {
        OpRequest::new(PUSH, Value::Int(v))
    }

    fn pop() -> OpRequest {
        OpRequest::new(POP, Value::Unit)
    }

    fn model() -> DualStackModel {
        DualStackModel::new(S, 2, 2)
    }

    #[test]
    fn sequential_push_pop() {
        let w = Workload::new(vec![vec![push(5), pop()]]);
        Explorer::new(&model(), w).run(|e| {
            let rets: Vec<Value> = e.history.operations().iter().map(|o| o.ret).collect();
            assert_eq!(rets, vec![Value::Unit, Value::Int(5)]);
        });
    }

    #[test]
    fn lone_pop_waits_forever() {
        let w = Workload::new(vec![vec![pop()]]);
        Explorer::new(&model(), w).run(|e| {
            assert!(!e.history.is_complete(), "a lone pop cannot complete");
        });
    }

    #[test]
    fn all_interleavings_cal_and_trace_agrees() {
        let spec = DualStackSpec::new(S);
        let w = Workload::new(vec![vec![push(5)], vec![pop()]]);
        let mut n = 0;
        let mut fulfilled = false;
        Explorer::new(&model(), w).run(|e| {
            n += 1;
            assert!(spec.accepts(&e.trace), "illegal trace {} for {}", e.trace, e.history);
            if e.history.is_complete() {
                assert!(
                    agrees_bool(&e.history, &e.trace),
                    "trace {} does not explain {}",
                    e.trace,
                    e.history
                );
                assert!(is_cal(&e.history, &spec).unwrap());
            }
            if e.trace.elements().iter().any(|el| el.len() == 2) {
                fulfilled = true;
            }
        });
        assert!(n > 5);
        assert!(fulfilled, "the reservation/fulfillment path must be reachable");
    }

    #[test]
    fn two_pushers_one_popper_budgeted() {
        let spec = DualStackSpec::new(S);
        let w = Workload::new(vec![vec![push(1)], vec![push(2)], vec![pop()]]);
        Explorer::new(&model(), w).max_paths(60_000).run(|e| {
            assert!(spec.accepts(&e.trace), "illegal trace {} for {}", e.trace, e.history);
            if e.history.is_complete() {
                assert!(agrees_bool(&e.history, &e.trace));
            }
        });
    }

    #[test]
    fn pushers_and_poppers_sampled() {
        let spec = DualStackSpec::new(S);
        let w = Workload::new(vec![
            vec![push(1), push(2)],
            vec![pop()],
            vec![pop()],
        ]);
        Explorer::new(&model(), w).sample(51, 2_000, |e| {
            assert!(spec.accepts(&e.trace), "illegal trace {} for {}", e.trace, e.history);
            if e.history.is_complete() {
                assert!(agrees_bool(&e.history, &e.trace));
            }
        });
    }
}
