//! Step-machine model of the elimination stack of Fig. 2 (lines 25–48).
//!
//! `push(v)` first attempts `S.push(v)`; on contention failure it offers
//! `v` to the elimination array and succeeds if it received the pop
//! sentinel, otherwise it retries. `pop()` is symmetric, offering the
//! sentinel. The unbounded `while(true)` retry loops are bounded by a
//! configurable number of rounds; exhausting the budget leaves the
//! operation pending ([`StepOutcome::Stuck`]), which CAL treats as a
//! droppable invocation — exactly the semantics of a non-terminating
//! operation.

use cal_core::{ObjectId, ThreadId, Value};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use crate::models::elim_array::{elim_array_step, ElimArrayLocal, ElimArrayModel, ElimArrayShared};
use crate::models::stack::{failing_stack_step, StackLocal, StackShared};
use cal_specs::vocab::{POP, POP_SENTINEL, PUSH};

/// Shared state: the central stack plus the elimination array slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ElimStackShared {
    /// The central stack `S`.
    pub stack: StackShared,
    /// The elimination array `AR`.
    pub array: ElimArrayShared,
}

/// Which operation an elimination-stack local state belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum EsOp {
    Push { v: i64 },
    Pop,
}

/// Local state of one elimination-stack operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ElimStackLocal {
    op: EsOp,
    rounds_left: u8,
    phase: EsPhase,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum EsPhase {
    /// Running the central-stack attempt (lines 32 / 42).
    OnStack(StackLocal),
    /// Running the elimination attempt (lines 34 / 44).
    OnArray(ElimArrayLocal),
}

/// The elimination stack model, composed of a [`FailingStackModel`]-style
/// central stack and an [`ElimArrayModel`].
///
/// [`FailingStackModel`]: crate::models::stack::FailingStackModel
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElimStackModel {
    es: ObjectId,
    stack: ObjectId,
    array: ElimArrayModel,
    max_rounds: u8,
}

impl ElimStackModel {
    /// Creates an elimination stack named `es` whose central stack is
    /// `stack` and whose elimination array is `array`, retrying at most
    /// `max_rounds` stack+elimination rounds per operation.
    pub fn new(es: ObjectId, stack: ObjectId, array: ElimArrayModel, max_rounds: u8) -> Self {
        ElimStackModel { es, stack, array, max_rounds }
    }

    /// The central stack's object id (elements in the logged trace).
    pub fn stack_object(&self) -> ObjectId {
        self.stack
    }

    /// The elimination array model.
    pub fn array(&self) -> &ElimArrayModel {
        &self.array
    }

    fn stack_phase(op: EsOp) -> EsPhase {
        match op {
            EsOp::Push { v } => EsPhase::OnStack(StackLocal::PushRead { v }),
            EsOp::Pop => EsPhase::OnStack(StackLocal::PopRead),
        }
    }

    fn array_phase(op: EsOp) -> EsPhase {
        let offer = match op {
            EsOp::Push { v } => v,
            EsOp::Pop => POP_SENTINEL,
        };
        EsPhase::OnArray(ElimArrayLocal::Pick { v: offer })
    }

    fn retry(&self, local: &mut ElimStackLocal) -> StepOutcome<ElimStackLocal> {
        if local.rounds_left == 0 {
            return StepOutcome::Stuck;
        }
        local.rounds_left -= 1;
        local.phase = Self::stack_phase(local.op);
        StepOutcome::Continue
    }
}

impl Model for ElimStackModel {
    type Shared = ElimStackShared;
    type Local = ElimStackLocal;

    fn object(&self) -> ObjectId {
        self.es
    }

    fn init_shared(&self) -> ElimStackShared {
        ElimStackShared {
            stack: StackShared::new(),
            array: self.array.init_shared(),
        }
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> ElimStackLocal {
        let op = match request.method {
            PUSH => {
                let v = request.arg.as_int().expect("push takes an integer");
                assert!(v != POP_SENTINEL, "cannot push the pop sentinel");
                EsOp::Push { v }
            }
            POP => EsOp::Pop,
            other => panic!("elimination stack does not offer {other}"),
        };
        ElimStackLocal { op, rounds_left: self.max_rounds, phase: Self::stack_phase(op) }
    }

    fn step(
        &self,
        shared: &mut ElimStackShared,
        local: &mut ElimStackLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<ElimStackLocal> {
        match &mut local.phase {
            EsPhase::OnStack(inner) => {
                match failing_stack_step(self.stack, &mut shared.stack, inner, ctx) {
                    StepOutcome::Continue => StepOutcome::Continue,
                    StepOutcome::Done(ret) => match (local.op, ret) {
                        // Line 33: if (b) return true.
                        (EsOp::Push { .. }, Value::Bool(true)) => {
                            StepOutcome::Done(Value::Bool(true))
                        }
                        // Line 34: fall through to elimination.
                        (EsOp::Push { .. }, Value::Bool(false)) => {
                            local.phase = Self::array_phase(local.op);
                            StepOutcome::Continue
                        }
                        // Line 43: if (b) return (true, v).
                        (EsOp::Pop, Value::Pair(true, v)) => {
                            StepOutcome::Done(Value::Pair(true, v))
                        }
                        // Line 44: fall through to elimination.
                        (EsOp::Pop, Value::Pair(false, _)) => {
                            local.phase = Self::array_phase(local.op);
                            StepOutcome::Continue
                        }
                        (op, ret) => unreachable!("stack returned {ret:?} for {op:?}"),
                    },
                    StepOutcome::Stuck => StepOutcome::Stuck,
                    StepOutcome::Choose(_) => unreachable!("stack never branches"),
                }
            }
            EsPhase::OnArray(inner) => {
                match elim_array_step(&self.array, &mut shared.array, inner, ctx) {
                    StepOutcome::Continue => StepOutcome::Continue,
                    StepOutcome::Choose(inners) => StepOutcome::Choose(
                        inners
                            .into_iter()
                            .map(|i| ElimStackLocal {
                                op: local.op,
                                rounds_left: local.rounds_left,
                                phase: EsPhase::OnArray(i),
                            })
                            .collect(),
                    ),
                    StepOutcome::Done(ret) => {
                        let (ok, d) = ret.as_pair().expect("exchange returns a pair");
                        match local.op {
                            EsOp::Push { .. } => {
                                // Lines 35–36: if (d == POP_SENTINAL) return true.
                                if ok && d == POP_SENTINEL {
                                    StepOutcome::Done(Value::Bool(true))
                                } else {
                                    self.retry(local)
                                }
                            }
                            EsOp::Pop => {
                                // Lines 45–46: if (v != POP_SENTINAL) return (true, v).
                                if ok && d != POP_SENTINEL {
                                    StepOutcome::Done(Value::Pair(true, d))
                                } else {
                                    self.retry(local)
                                }
                            }
                        }
                    }
                    StepOutcome::Stuck => StepOutcome::Stuck,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::agree::agrees_bool;
    use cal_core::compose::{Composed, TraceMap};
    use cal_specs::elim_array::FArMap;
    use cal_specs::elim_stack::{modular_stack_check, FEsMap};

    const ES: ObjectId = ObjectId(0);
    const S: ObjectId = ObjectId(1);
    const AR: ObjectId = ObjectId(2);
    const E0: ObjectId = ObjectId(10);

    fn model() -> ElimStackModel {
        ElimStackModel::new(ES, S, ElimArrayModel::new(AR, vec![E0]), 1)
    }

    fn push(v: i64) -> OpRequest {
        OpRequest::new(PUSH, Value::Int(v))
    }

    fn pop() -> OpRequest {
        OpRequest::new(POP, Value::Unit)
    }

    fn maps() -> (FArMap, FEsMap) {
        (FArMap::new(AR, vec![E0]), FEsMap::new(ES, S, AR))
    }

    #[test]
    fn sequential_push_pop_round_trip() {
        let m = model();
        let w = Workload::new(vec![vec![push(5), pop()]]);
        Explorer::new(&m, w).run(|e| {
            let rets: Vec<Value> = e.history.operations().iter().map(|o| o.ret).collect();
            assert_eq!(rets, vec![Value::Bool(true), Value::Pair(true, 5)]);
        });
    }

    #[test]
    fn concurrent_push_pop_all_interleavings_pass_modular_check() {
        let m = model();
        let (far, fes) = maps();
        let composed = Composed::new(fes, far.clone());
        let w = Workload::new(vec![vec![push(5)], vec![pop()]]);
        let mut execs = 0;
        Explorer::new(&m, w).run(|e| {
            execs += 1;
            // Lift E-elements to AR, then through F_ES to abstract ES ops.
            let lifted = far.apply(&e.trace);
            assert!(modular_stack_check(&fes, &lifted), "trace {} fails check", e.trace);
            // The ES-level history agrees with the abstract trace.
            let abstract_trace = composed.apply(&e.trace);
            // Agreement holds only over completed ES operations; drop
            // abstract ops of threads whose ES op never returned (stuck).
            if e.history.is_complete() {
                assert!(
                    agrees_bool(&e.history, &abstract_trace),
                    "history {} disagrees with {}",
                    e.history,
                    abstract_trace
                );
            }
        });
        assert!(execs > 5);
    }

    #[test]
    fn elimination_path_is_reachable_under_contention() {
        // A push can only fail (and try elimination) when another stack CAS
        // races it, so contention needs two pushers; the popper meets the
        // loser in the elimination array.
        let m = model();
        let w = Workload::new(vec![vec![push(1)], vec![push(2)], vec![pop()]]);
        let mut eliminated = false;
        Explorer::new(&m, w).sample(11, 4000, |e| {
            if e.trace.elements().iter().any(|el| el.object() == E0 && el.len() == 2) {
                eliminated = true;
            }
        });
        assert!(eliminated, "some schedule must take the elimination path");
    }

    #[test]
    fn pop_on_empty_stack_waits_for_elimination_partner() {
        // A lone pop on an empty stack can only finish via elimination; with
        // no partner it must end up stuck (pending), never returning empty.
        let m = model();
        let w = Workload::new(vec![vec![pop()]]);
        Explorer::new(&m, w).run(|e| {
            assert!(!e.history.is_complete(), "lone pop cannot complete: {}", e.history);
        });
    }

    #[test]
    fn elimination_transfers_the_right_value() {
        let m = model();
        let w = Workload::new(vec![vec![push(5)], vec![pop()]]);
        Explorer::new(&m, w).run(|e| {
            for op in e.history.operations() {
                if op.method == POP {
                    if let Some((true, v)) = op.ret.as_pair() {
                        assert_eq!(v, 5);
                    }
                }
            }
        });
    }

    #[test]
    fn two_pushers_one_popper() {
        let m = model();
        let (far, fes) = maps();
        let w = Workload::new(vec![vec![push(1)], vec![push(2)], vec![pop()]]);
        let mut execs = 0;
        Explorer::new(&m, w).sample(3, 2000, |e| {
            execs += 1;
            let lifted = far.apply(&e.trace);
            assert!(modular_stack_check(&fes, &lifted), "trace {} fails check", e.trace);
        });
        assert!(execs > 50);
    }
}
