//! Step-machine models of the stacks of Fig. 2.
//!
//! [`FailingStackModel`] is the paper's central stack `S`: `push` and `pop`
//! perform one CAS on `top` and report failure on contention (lines 7–24).
//! [`TreiberStackModel`] is the classic retrying variant used as the
//! no-elimination baseline: it retries the CAS until it succeeds (bounded;
//! exhausting the bound leaves the operation pending via
//! [`StepOutcome::Stuck`]).
//!
//! Both log one singleton CA-element per completed operation at its
//! linearization point — the CAS (success or failure) or the empty-stack
//! read — matching the stack specification of §4, where *every* `S.f(n)`
//! appends `S.{(t, f(n) ▷ r)}` to the trace.

use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};
use cal_specs::vocab::{POP, PUSH};

/// One immutable stack cell (Fig. 2, line 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// The stored value.
    pub data: i64,
    /// The next cell down, by arena index.
    pub next: Option<usize>,
}

/// Shared state of a stack: a cell arena plus `top`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StackShared {
    /// All cells ever allocated.
    pub cells: Vec<Cell>,
    /// The current top of the stack.
    pub top: Option<usize>,
}

impl StackShared {
    /// Creates an empty stack.
    pub fn new() -> Self {
        StackShared::default()
    }

    /// The stack contents, bottom first (for assertions in tests).
    pub fn contents(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut cur = self.top;
        while let Some(i) = cur {
            out.push(self.cells[i].data);
            cur = self.cells[i].next;
        }
        out.reverse();
        out
    }
}

/// Local state of one failing-stack operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackLocal {
    /// `push` line 11: read `top` and allocate the new cell.
    PushRead {
        /// The value to push.
        v: i64,
    },
    /// `push` line 13: `CAS(&top, h, n)`.
    PushCas {
        /// The value to push.
        v: i64,
        /// The observed `top`.
        h: Option<usize>,
        /// The allocated cell.
        n: usize,
    },
    /// `pop` line 16: read `top`.
    PopRead,
    /// `pop` lines 19–20: read `h.next`, then `CAS(&top, h, n)`.
    PopCas {
        /// The observed `top`.
        h: usize,
    },
}

/// Logs the singleton element for a completed stack operation.
fn log_stack_op(
    ctx: &mut StepCtx<'_>,
    object: ObjectId,
    t: ThreadId,
    method: cal_core::Method,
    arg: Value,
    ret: Value,
) {
    ctx.log(CaElement::singleton(Operation::new(t, object, method, arg, ret)));
}

/// One step of the failing stack; reusable by the elimination stack model.
/// Returns `Done` with the operation's `(bool, …)` result.
pub fn failing_stack_step(
    object: ObjectId,
    shared: &mut StackShared,
    local: &mut StackLocal,
    ctx: &mut StepCtx<'_>,
) -> StepOutcome<StackLocal> {
    let t = ctx.thread;
    match *local {
        StackLocal::PushRead { v } => {
            // Lines 11–12: h = top; n = new Cell(data, h).
            let h = shared.top;
            let n = shared.cells.len();
            shared.cells.push(Cell { data: v, next: h });
            *local = StackLocal::PushCas { v, h, n };
            StepOutcome::Continue
        }
        StackLocal::PushCas { v, h, n } => {
            // Line 13: return CAS(&top, h, n).
            if shared.top == h {
                shared.top = Some(n);
                ctx.label("PUSH");
                log_stack_op(ctx, object, t, PUSH, Value::Int(v), Value::Bool(true));
                StepOutcome::Done(Value::Bool(true))
            } else {
                ctx.label("PUSH-FAIL");
                log_stack_op(ctx, object, t, PUSH, Value::Int(v), Value::Bool(false));
                StepOutcome::Done(Value::Bool(false))
            }
        }
        StackLocal::PopRead => {
            // Lines 16–18: h = top; if (h == null) return (false, 0).
            match shared.top {
                None => {
                    ctx.label("POP-EMPTY");
                    log_stack_op(ctx, object, t, POP, Value::Unit, Value::Pair(false, 0));
                    StepOutcome::Done(Value::Pair(false, 0))
                }
                Some(h) => {
                    *local = StackLocal::PopCas { h };
                    StepOutcome::Continue
                }
            }
        }
        StackLocal::PopCas { h } => {
            // Lines 19–23: n = h.next; if (CAS(&top, h, n)) … else (false,0).
            // Cells are immutable, so reading h.next here is equivalent to
            // the separate read of line 19.
            let n = shared.cells[h].next;
            if shared.top == Some(h) {
                shared.top = n;
                let v = shared.cells[h].data;
                ctx.label("POP");
                log_stack_op(ctx, object, t, POP, Value::Unit, Value::Pair(true, v));
                StepOutcome::Done(Value::Pair(true, v))
            } else {
                ctx.label("POP-FAIL");
                log_stack_op(ctx, object, t, POP, Value::Unit, Value::Pair(false, 0));
                StepOutcome::Done(Value::Pair(false, 0))
            }
        }
    }
}

/// The failing central stack `S` of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailingStackModel {
    object: ObjectId,
}

impl FailingStackModel {
    /// Creates a model of the failing stack named `object`.
    pub fn new(object: ObjectId) -> Self {
        FailingStackModel { object }
    }
}

fn stack_local_for(request: &OpRequest) -> StackLocal {
    match request.method {
        PUSH => StackLocal::PushRead { v: request.arg.as_int().expect("push takes an integer") },
        POP => StackLocal::PopRead,
        other => panic!("stack does not offer {other}"),
    }
}

impl Model for FailingStackModel {
    type Shared = StackShared;
    type Local = StackLocal;

    fn object(&self) -> ObjectId {
        self.object
    }

    fn init_shared(&self) -> StackShared {
        StackShared::new()
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> StackLocal {
        stack_local_for(request)
    }

    fn step(
        &self,
        shared: &mut StackShared,
        local: &mut StackLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<StackLocal> {
        failing_stack_step(self.object, shared, local, ctx)
    }
}

/// Local state of a retrying (Treiber) stack operation: the failing-stack
/// machine plus a retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreiberLocal {
    inner: StackLocal,
    attempts_left: u8,
}

/// The classic retrying Treiber stack, used as the no-elimination baseline.
/// `pop` on an empty stack still returns `(false, 0)` (a legitimate result,
/// not contention); CAS contention is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreiberStackModel {
    object: ObjectId,
    max_attempts: u8,
}

impl TreiberStackModel {
    /// Creates a model of the retrying stack named `object`, retrying a
    /// contended CAS up to `max_attempts` times before the operation is
    /// left pending.
    pub fn new(object: ObjectId, max_attempts: u8) -> Self {
        TreiberStackModel { object, max_attempts }
    }
}

impl Model for TreiberStackModel {
    type Shared = StackShared;
    type Local = TreiberLocal;

    fn object(&self) -> ObjectId {
        self.object
    }

    fn init_shared(&self) -> StackShared {
        StackShared::new()
    }

    fn on_invoke(&self, _thread: ThreadId, request: &OpRequest) -> TreiberLocal {
        TreiberLocal { inner: stack_local_for(request), attempts_left: self.max_attempts }
    }

    fn step(
        &self,
        shared: &mut StackShared,
        local: &mut TreiberLocal,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<TreiberLocal> {
        // Run the failing machine, but turn contention failures into
        // retries. Distinguish contention from pop-on-empty by peeking at
        // the machine state: PopRead on empty is a real (false, 0).
        let was_pop_read = matches!(local.inner, StackLocal::PopRead) && shared.top.is_none();
        let mut label = None;
        let outcome = {
            // Intercept trace logging: failures that will be retried must
            // not log an element. Run the step into a scratch trace.
            let mut scratch = cal_core::CaTrace::new();
            let mut scratch_ctx = StepCtx::new(ctx.thread, &mut scratch, &mut label);
            let outcome = failing_stack_step(self.object, shared, &mut local.inner, &mut scratch_ctx);
            match &outcome {
                StepOutcome::Done(ret) => {
                    let failed = matches!(ret, Value::Bool(false))
                        || (matches!(ret, Value::Pair(false, _)) && !was_pop_read);
                    if !failed {
                        // Commit the logged element and label.
                        for e in scratch.elements() {
                            ctx.log(e.clone());
                        }
                        if let Some(l) = label {
                            ctx.label(l);
                        }
                    }
                }
                _ => {
                    debug_assert!(scratch.is_empty());
                    if let Some(l) = label {
                        ctx.label(l);
                    }
                }
            }
            outcome
        };
        match outcome {
            StepOutcome::Done(Value::Bool(false)) => {
                // Contended push: retry.
                self.retry(local, |v| StackLocal::PushRead { v })
            }
            StepOutcome::Done(Value::Pair(false, _)) if !was_pop_read => {
                // Contended pop: retry.
                self.retry(local, |_| StackLocal::PopRead)
            }
            StepOutcome::Continue => StepOutcome::Continue,
            StepOutcome::Done(ret) => StepOutcome::Done(ret),
            StepOutcome::Stuck => StepOutcome::Stuck,
            StepOutcome::Choose(_) => unreachable!("stack never branches"),
        }
    }
}

impl TreiberStackModel {
    fn retry(
        &self,
        local: &mut TreiberLocal,
        restart: impl Fn(i64) -> StackLocal,
    ) -> StepOutcome<TreiberLocal> {
        if local.attempts_left == 0 {
            return StepOutcome::Stuck;
        }
        local.attempts_left -= 1;
        let v = match local.inner {
            StackLocal::PushCas { v, .. } | StackLocal::PushRead { v } => v,
            _ => 0,
        };
        local.inner = restart(v);
        StepOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Explorer, Workload};
    use cal_core::agree::agrees_bool;
    use cal_core::seqlin::is_linearizable;
    use cal_core::spec::SeqSpec;
    use cal_specs::stack::StackSpec;

    const S: ObjectId = ObjectId(0);

    fn push(v: i64) -> OpRequest {
        OpRequest::new(PUSH, Value::Int(v))
    }

    fn pop() -> OpRequest {
        OpRequest::new(POP, Value::Unit)
    }

    #[test]
    fn sequential_push_pop() {
        let m = FailingStackModel::new(S);
        let w = Workload::new(vec![vec![push(1), push(2), pop(), pop(), pop()]]);
        Explorer::new(&m, w).run(|e| {
            let rets: Vec<Value> = e.history.operations().iter().map(|o| o.ret).collect();
            assert_eq!(
                rets,
                vec![
                    Value::Bool(true),
                    Value::Bool(true),
                    Value::Pair(true, 2),
                    Value::Pair(true, 1),
                    Value::Pair(false, 0),
                ]
            );
        });
    }

    #[test]
    fn contention_can_fail_operations() {
        let m = FailingStackModel::new(S);
        let w = Workload::new(vec![vec![push(1)], vec![push(2)]]);
        let mut saw_failure = false;
        Explorer::new(&m, w).run(|e| {
            for op in e.history.operations() {
                if op.ret == Value::Bool(false) {
                    saw_failure = true;
                }
            }
        });
        assert!(saw_failure, "overlapping pushes must be able to contend");
    }

    #[test]
    fn every_interleaving_linearizable_wrt_failing_spec() {
        let m = FailingStackModel::new(S);
        let spec = StackSpec::failing(S);
        let w = Workload::new(vec![vec![push(1), pop()], vec![push(2), pop()]]);
        let mut execs = 0;
        Explorer::new(&m, w).run(|e| {
            execs += 1;
            // The logged trace is the linearization witness.
            let ops: Vec<_> = e.trace.all_ops();
            assert!(spec.accepts(&ops), "trace {} illegal", e.trace);
            assert!(agrees_bool(&e.history, &e.trace));
            assert!(is_linearizable(&e.history, &spec).unwrap());
        });
        assert!(execs > 5);
    }

    #[test]
    fn treiber_push_always_succeeds_within_budget() {
        let m = TreiberStackModel::new(S, 4);
        let w = Workload::new(vec![vec![push(1)], vec![push(2)]]);
        Explorer::new(&m, w).run(|e| {
            for op in e.history.operations() {
                assert_eq!(op.ret, Value::Bool(true));
            }
            assert_eq!(e.final_shared.contents().len(), 2);
        });
    }

    #[test]
    fn treiber_is_linearizable_wrt_total_spec() {
        let m = TreiberStackModel::new(S, 4);
        let spec = StackSpec::total(S);
        let w = Workload::new(vec![vec![push(1), pop()], vec![push(2)]]);
        Explorer::new(&m, w).run(|e| {
            let ops: Vec<_> = e.trace.all_ops();
            assert!(spec.accepts(&ops), "trace {} illegal", e.trace);
            assert!(agrees_bool(&e.history, &e.trace));
        });
    }

    #[test]
    fn treiber_pop_empty_is_a_real_result() {
        let m = TreiberStackModel::new(S, 4);
        let w = Workload::new(vec![vec![pop()]]);
        Explorer::new(&m, w).run(|e| {
            assert_eq!(e.history.operations()[0].ret, Value::Pair(false, 0));
        });
    }

    #[test]
    fn contents_reports_bottom_first() {
        let mut s = StackShared::new();
        s.cells.push(Cell { data: 1, next: None });
        s.cells.push(Cell { data: 2, next: Some(0) });
        s.top = Some(1);
        assert_eq!(s.contents(), vec![1, 2]);
    }
}
