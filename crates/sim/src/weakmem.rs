//! Weak-memory-plausible partial-order emission: relax a recorded
//! history's real-time order into a happens-before order a weak-memory
//! multicore could actually have produced.
//!
//! A recorded [`History`] is totally ordered by the recorder's clock, but
//! on a weak-memory machine that order over-constrains what the threads
//! themselves observed: a store sitting in a core's store buffer may
//! *complete* (in real time) long before it becomes visible to other
//! cores, and out-of-order execution can detach cross-thread visibility
//! from wall-clock precedence entirely. This module emits a seeded,
//! deterministic *sub-order* of the real-time order under two profiles:
//!
//! - [`WeakMemProfile::StoreBuffering`] — TSO-style: cross-thread edges
//!   whose source is a payload-carrying operation (a store, push, put,
//!   offer — anything whose invocation carries a non-unit argument) are
//!   mostly dropped; edges sourced at read-like operations survive.
//!   This is the store-buffering litmus shape: my completed write need
//!   not have been visible to your later read.
//! - [`WeakMemProfile::Reordering`] — a more aggressive out-of-order
//!   model: every cross-thread edge is dropped by a seeded coin,
//!   whatever its source.
//!
//! Per-thread *session order* is never relaxed — both profiles emit
//! orders that contain it, as every causal order must
//! ([`HbRelation::causal`] adds it back unconditionally).
//!
//! **Soundness contract** (pinned by the tests here and in the chaos
//! causal fault family): the emitted edges are always a subset of
//! real-time precedence, so the resulting happens-before relation is a
//! sub-order of `≺H`. Relaxation only ever *removes* ordering
//! constraints, hence a history accepted under the real-time order is
//! still accepted under the relaxed order — the emitter can weaken a
//! verdict from reject to accept (that is the point: the reordering
//! explains the anomaly) but can never fabricate a violation.

use cal_core::history::{HbRelation, Span};
use cal_core::{History, Value};

/// Which weak-memory model shapes the relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeakMemProfile {
    /// TSO-style store buffering: writes become visible late; cross-thread
    /// edges sourced at payload-carrying operations are mostly dropped.
    StoreBuffering,
    /// General out-of-order visibility: every cross-thread edge is
    /// dropped by a seeded coin.
    Reordering,
}

impl WeakMemProfile {
    /// Every profile, in CLI order.
    pub const ALL: [WeakMemProfile; 2] =
        [WeakMemProfile::StoreBuffering, WeakMemProfile::Reordering];

    /// Stable name, for reports and CLIs.
    pub fn name(&self) -> &'static str {
        match self {
            WeakMemProfile::StoreBuffering => "store-buffering",
            WeakMemProfile::Reordering => "reordering",
        }
    }

    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Option<Self> {
        WeakMemProfile::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for WeakMemProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// SplitMix64 finalizer over (seed, edge): one independent coin per edge,
/// so the decision for edge (i, j) never depends on iteration order.
fn coin(seed: u64, i: usize, j: usize) -> u64 {
    let mut z = seed
        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A "store-like" operation for the store-buffering profile: its
/// invocation carries a payload. This deliberately spans vocabularies —
/// `write`, `put`, `push`, `exchange(v)` all carry non-unit arguments,
/// while `read`, `get`, `pop`, `take` do not.
fn is_store(history: &History, span: &Span) -> bool {
    history.actions()[span.inv].arg().is_some_and(|v| v != Value::Unit)
}

/// Emits the surviving cross-thread real-time edges of `history` under
/// `profile`, seeded by `seed`, as `(from, to)` span-index pairs suitable
/// for [`HbRelation::causal`] and the kvlog `hb` annotation
/// (`cal_core::format::format_kvlog_annotated`).
///
/// Only the *transitive reduction* of the cross-thread real-time order is
/// considered (an edge bridged by a third operation adds nothing), and
/// same-thread pairs are skipped entirely — session order is implicit.
/// The result is deterministic in `(history, profile, seed)` and always a
/// subset of real-time precedence.
pub fn relax(history: &History, profile: WeakMemProfile, seed: u64) -> Vec<(usize, usize)> {
    let spans = history.spans();
    let n = spans.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j
                || spans[i].thread == spans[j].thread
                || !History::spans_precede(&spans[i], &spans[j])
            {
                continue;
            }
            // Transitive reduction: a bridged edge carries no information.
            let bridged = (0..n).any(|k| {
                k != i
                    && k != j
                    && History::spans_precede(&spans[i], &spans[k])
                    && History::spans_precede(&spans[k], &spans[j])
            });
            if bridged {
                continue;
            }
            let r = coin(seed, i, j);
            let drop = match profile {
                // A store's completion says nothing about its visibility:
                // drop 3 in 4 store-sourced edges. Read-sourced edges
                // survive (a load's value was already globally visible).
                WeakMemProfile::StoreBuffering => is_store(history, &spans[i]) && !r.is_multiple_of(4),
                // Out-of-order visibility detaches everything: even coin.
                WeakMemProfile::Reordering => !r.is_multiple_of(2),
            };
            if !drop {
                edges.push((i, j));
            }
        }
    }
    edges
}

/// Like [`relax`], but folds the surviving edges into the happens-before
/// relation itself (session order ∪ kept edges, transitively closed).
///
/// The emitted edges are real-time edges, so together with session order
/// they can never form a cycle — the relation always builds.
pub fn relaxed_order(history: &History, profile: WeakMemProfile, seed: u64) -> HbRelation {
    let spans = history.spans();
    HbRelation::causal(&spans, &relax(history, profile, seed))
        .expect("a sub-order of real time is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::exchanger::ExchangerModel;
    use crate::sched::{Explorer, Workload};
    use crate::OpRequest;
    use cal_core::causal::is_causal;
    use cal_core::check::is_cal;
    use cal_core::history::PartialHistory;
    use cal_core::ObjectId;
    use cal_specs::exchanger::ExchangerSpec;
    use cal_specs::vocab::EXCHANGE;

    const X: ObjectId = ObjectId(0);

    fn executions(threads: usize) -> Vec<History> {
        let model = ExchangerModel::new(X);
        let ops = (0..threads)
            .map(|t| vec![OpRequest::new(EXCHANGE, Value::Int(t as i64))])
            .collect();
        let mut out = Vec::new();
        Explorer::new(&model, Workload::new(ops)).run(|e| out.push(e.history.clone()));
        out
    }

    #[test]
    fn profiles_round_trip_their_names() {
        for p in WeakMemProfile::ALL {
            assert_eq!(WeakMemProfile::parse(p.name()), Some(p));
        }
        assert_eq!(WeakMemProfile::parse("tso"), None);
    }

    #[test]
    fn relaxation_is_deterministic() {
        for h in executions(3) {
            for p in WeakMemProfile::ALL {
                assert_eq!(relax(&h, p, 7), relax(&h, p, 7), "{p} on {h}");
            }
        }
    }

    /// The pinned contract: the relaxed order is a sub-order of real
    /// time — every pair it orders, real time orders the same way.
    #[test]
    fn relaxed_order_is_a_sub_order_of_real_time() {
        for h in executions(3) {
            let spans = h.spans();
            let real = HbRelation::real_time(&spans);
            for p in WeakMemProfile::ALL {
                for seed in 0..8 {
                    let hb = relaxed_order(&h, p, seed);
                    for i in 0..hb.len() {
                        for j in 0..hb.len() {
                            assert!(
                                !hb.precedes(i, j) || real.precedes(i, j),
                                "{p} seed {seed}: ({i}, {j}) ordered beyond real time in {h}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Session order survives every profile: same-thread operations stay
    /// ordered however aggressive the relaxation.
    #[test]
    fn session_order_is_never_relaxed() {
        for h in executions(2) {
            let spans = h.spans();
            for p in WeakMemProfile::ALL {
                let hb = relaxed_order(&h, p, 3);
                for i in 0..spans.len() {
                    for j in 0..spans.len() {
                        if i != j
                            && spans[i].thread == spans[j].thread
                            && History::spans_precede(&spans[i], &spans[j])
                        {
                            assert!(hb.precedes(i, j), "{p}: session edge ({i}, {j}) lost");
                        }
                    }
                }
            }
        }
    }

    /// Monotone acceptance: a history the CAL checker accepts stays
    /// accepted under any relaxed order — relaxation removes constraints,
    /// it never fabricates a violation.
    #[test]
    fn relaxation_never_fabricates_a_violation() {
        let spec = ExchangerSpec::new(X);
        let mut checked = 0;
        for h in executions(3) {
            if !is_cal(&h, &spec).unwrap() {
                continue;
            }
            for p in WeakMemProfile::ALL {
                for seed in 0..4 {
                    let hb = relaxed_order(&h, p, seed);
                    assert!(
                        is_causal(&h, &spec, &hb).unwrap(),
                        "{p} seed {seed}: relaxation broke an accepted history:\n{h}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no accepted execution was exercised");
    }
}
