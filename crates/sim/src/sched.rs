//! Schedulers: exhaustive DFS over all interleavings, and seeded random
//! walks for configurations too large to enumerate.
//!
//! Every scheduling point is either an *invocation* (a new client-visible
//! action enters the history) or one *shared-memory step* of a running
//! operation; responses are appended the moment an operation completes,
//! which yields the richest real-time order (the strictest input for the
//! checkers). Each terminal path produces an [`Execution`]: the
//! client-visible [`History`], the logged auxiliary trace `𝒯`, the final
//! shared state, and (optionally) the per-step transition log consumed by
//! the rely/guarantee checker.

use std::collections::HashSet;

use cal_core::{Action, CaTrace, History, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{Model, OpRequest, StepCtx, StepOutcome};

/// A bounded client program: one list of operation requests per thread.
/// Thread `i` runs as [`ThreadId`]`(i)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    per_thread: Vec<Vec<OpRequest>>,
}

impl Workload {
    /// Creates a workload from per-thread request lists.
    pub fn new(per_thread: Vec<Vec<OpRequest>>) -> Self {
        Workload { per_thread }
    }

    /// The request lists, one per thread.
    pub fn per_thread(&self) -> &[Vec<OpRequest>] {
        &self.per_thread
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.per_thread.len()
    }

    /// Total number of operation requests.
    pub fn total_ops(&self) -> usize {
        self.per_thread.iter().map(Vec::len).sum()
    }
}

/// Why a recorded transition exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A client invoked an operation (history grew by an invocation).
    Invoke,
    /// A shared-memory step; `completed` is `true` when the operation
    /// returned at this step (history grew by a response).
    Step {
        /// Whether the operation responded at this step.
        completed: bool,
    },
}

/// One scheduler event, with before/after shared state for rely/guarantee
/// conformance checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition<S, L> {
    /// The thread that moved.
    pub thread: ThreadId,
    /// The rely/guarantee action label the model attached, if any.
    pub label: Option<&'static str>,
    /// Event kind.
    pub kind: TransitionKind,
    /// Shared state before the event.
    pub pre: S,
    /// Shared state after the event.
    pub post: S,
    /// Trace length before the event.
    pub trace_before: usize,
    /// Trace length after the event.
    pub trace_after: usize,
    /// Snapshot of every thread's local state *after* the event (`None`
    /// for threads with no operation in flight). Proof-outline assertions
    /// are evaluated against these snapshots, which checks both their
    /// establishment and their stability under interference.
    pub locals: Vec<Option<L>>,
}

/// A complete run of the workload under one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution<S, L> {
    /// The client-visible history of invocations and responses.
    pub history: History,
    /// The logged auxiliary trace `𝒯`.
    pub trace: CaTrace,
    /// The final shared state.
    pub final_shared: S,
    /// Per-step transitions (empty unless recording was enabled).
    pub transitions: Vec<Transition<S, L>>,
}

/// Aggregate statistics of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Terminal schedules reached.
    pub paths: u64,
    /// Distinct `(history, trace)` outcomes among them.
    pub unique_executions: u64,
    /// `true` if the path budget stopped the exploration early.
    pub truncated: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ThreadState<L> {
    Idle { next_op: usize },
    Running { next_op: usize, local: L, steps: usize },
    Parked,
}

/// Pruning key: everything that determines the remainder of a schedule.
type VisitKey<M> = (
    <M as Model>::Shared,
    Vec<ThreadState<<M as Model>::Local>>,
    History,
    CaTrace,
);

struct PathState<M: Model> {
    shared: M::Shared,
    trace: CaTrace,
    history: History,
    threads: Vec<ThreadState<M::Local>>,
    transitions: Vec<Transition<M::Shared, M::Local>>,
}

// Manual impl: a derive would wrongly require `M: Clone`.
impl<M: Model> Clone for PathState<M> {
    fn clone(&self) -> Self {
        PathState {
            shared: self.shared.clone(),
            trace: self.trace.clone(),
            history: self.history.clone(),
            threads: self.threads.clone(),
            transitions: self.transitions.clone(),
        }
    }
}

/// Exhaustive (or budgeted) exploration of all interleavings of a workload
/// against a model.
pub struct Explorer<'m, M> {
    model: &'m M,
    workload: Workload,
    record_transitions: bool,
    max_paths: u64,
    max_steps_per_op: usize,
    dedup: bool,
    prune: bool,
}

impl<M> std::fmt::Debug for Explorer<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Explorer")
            .field("workload", &self.workload)
            .field("record_transitions", &self.record_transitions)
            .field("max_paths", &self.max_paths)
            .field("dedup", &self.dedup)
            .finish_non_exhaustive()
    }
}

impl<'m, M: Model> Explorer<'m, M> {
    /// Creates an explorer for `model` running `workload`.
    pub fn new(model: &'m M, workload: Workload) -> Self {
        Explorer {
            model,
            workload,
            record_transitions: false,
            max_paths: u64::MAX,
            max_steps_per_op: 10_000,
            dedup: true,
            prune: true,
        }
    }

    /// Also records per-step transitions into each [`Execution`] (needed by
    /// the rely/guarantee checker; costs one shared-state clone per step).
    /// Implies [`Explorer::no_pruning`], because pruning would discard
    /// schedules whose transition logs differ even though their outcomes
    /// coincide.
    pub fn record_transitions(mut self, yes: bool) -> Self {
        self.record_transitions = yes;
        if yes {
            self.prune = false;
        }
        self
    }

    /// Disables state-space pruning. By default, a partial schedule whose
    /// full state `(shared, thread states, history, trace)` was already
    /// visited is cut off — its subtree is identical to the visited one, so
    /// no outcome is lost; only the number of explored schedules changes.
    pub fn no_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Caps the number of terminal paths visited.
    pub fn max_paths(mut self, cap: u64) -> Self {
        self.max_paths = cap;
        self
    }

    /// Disables deduplication of identical `(history, trace)` outcomes, so
    /// the visitor sees every schedule.
    pub fn visit_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Runs the exploration, invoking `visit` on each terminal execution
    /// (each *distinct* one, unless [`Explorer::visit_duplicates`] was
    /// requested).
    ///
    /// # Panics
    ///
    /// Panics if an operation exceeds the per-operation step bound — a
    /// model must encode unbounded retry loops with
    /// [`StepOutcome::Stuck`].
    pub fn run<F>(&self, mut visit: F) -> ExploreStats
    where
        F: FnMut(&Execution<M::Shared, M::Local>),
    {
        let mut stats = ExploreStats::default();
        let mut seen: HashSet<(History, CaTrace)> = HashSet::new();
        let mut visited: HashSet<VisitKey<M>> = HashSet::new();
        let root = PathState::<M> {
            shared: self.model.init_shared(),
            trace: CaTrace::new(),
            history: History::new(),
            threads: (0..self.workload.threads())
                .map(|_| ThreadState::Idle { next_op: 0 })
                .collect(),
            transitions: Vec::new(),
        };
        self.dfs(root, &mut stats, &mut seen, &mut visited, &mut visit);
        stats
    }

    fn dfs<F>(
        &self,
        state: PathState<M>,
        stats: &mut ExploreStats,
        seen: &mut HashSet<(History, CaTrace)>,
        visited: &mut HashSet<VisitKey<M>>,
        visit: &mut F,
    ) where
        F: FnMut(&Execution<M::Shared, M::Local>),
    {
        if stats.paths >= self.max_paths {
            stats.truncated = true;
            return;
        }
        if self.prune {
            let key = (
                state.shared.clone(),
                state.threads.clone(),
                state.history.clone(),
                state.trace.clone(),
            );
            if !visited.insert(key) {
                return;
            }
        }
        let enabled = self.enabled_threads(&state);
        if enabled.is_empty() {
            stats.paths += 1;
            let key = (state.history.clone(), state.trace.clone());
            if self.dedup && !seen.insert(key) {
                return;
            }
            stats.unique_executions += 1;
            visit(&Execution {
                history: state.history,
                trace: state.trace,
                final_shared: state.shared,
                transitions: state.transitions,
            });
            return;
        }
        for t in enabled {
            for next in self.advance(&state, t) {
                self.dfs(next, stats, seen, visited, visit);
            }
        }
    }

    fn locals_snapshot(threads: &[ThreadState<M::Local>]) -> Vec<Option<M::Local>> {
        threads
            .iter()
            .map(|t| match t {
                ThreadState::Running { local, .. } => Some(local.clone()),
                _ => None,
            })
            .collect()
    }

    fn enabled_threads(&self, state: &PathState<M>) -> Vec<usize> {
        (0..state.threads.len())
            .filter(|&t| match &state.threads[t] {
                ThreadState::Idle { next_op } => *next_op < self.workload.per_thread[t].len(),
                ThreadState::Running { .. } => true,
                ThreadState::Parked => false,
            })
            .collect()
    }

    /// Applies one scheduling choice for thread `t`, returning the successor
    /// path states (several if the step branched nondeterministically).
    fn advance(&self, state: &PathState<M>, t: usize) -> Vec<PathState<M>> {
        let thread = ThreadId(t as u32);
        let mut next = state.clone();
        match &state.threads[t] {
            ThreadState::Idle { next_op } => {
                let request = &self.workload.per_thread[t][*next_op];
                let local = self.model.on_invoke(thread, request);
                next.history.push(Action::invoke(
                    thread,
                    self.model.object(),
                    request.method,
                    request.arg,
                ));
                next.threads[t] =
                    ThreadState::Running { next_op: next_op + 1, local, steps: 0 };
                if self.record_transitions {
                    next.transitions.push(Transition {
                        thread,
                        label: None,
                        kind: TransitionKind::Invoke,
                        pre: state.shared.clone(),
                        post: state.shared.clone(),
                        trace_before: state.trace.len(),
                        trace_after: state.trace.len(),
                        locals: Self::locals_snapshot(&next.threads),
                    });
                }
                vec![next]
            }
            ThreadState::Running { next_op, local, steps } => {
                assert!(
                    *steps < self.max_steps_per_op,
                    "operation exceeded {} steps; bound retry loops with StepOutcome::Stuck",
                    self.max_steps_per_op
                );
                let request = &self.workload.per_thread[t][next_op - 1];
                let mut local = local.clone();
                let mut label = None;
                let trace_before = next.trace.len();
                let pre = if self.record_transitions {
                    Some(state.shared.clone())
                } else {
                    None
                };
                let outcome = {
                    let mut ctx = StepCtx::new(thread, &mut next.trace, &mut label);
                    self.model.step(&mut next.shared, &mut local, &mut ctx)
                };
                match outcome {
                    StepOutcome::Choose(locals) => {
                        // Branch: no shared change, no history change.
                        debug_assert_eq!(next.shared, state.shared, "Choose must not mutate");
                        debug_assert_eq!(next.trace.len(), trace_before);
                        locals
                            .into_iter()
                            .map(|l| {
                                let mut branch = next.clone();
                                branch.threads[t] = ThreadState::Running {
                                    next_op: *next_op,
                                    local: l,
                                    steps: steps + 1,
                                };
                                branch
                            })
                            .collect()
                    }
                    other => {
                        let completed = matches!(other, StepOutcome::Done(_));
                        match other {
                            StepOutcome::Continue => {
                                next.threads[t] = ThreadState::Running {
                                    next_op: *next_op,
                                    local,
                                    steps: steps + 1,
                                };
                            }
                            StepOutcome::Done(ret) => {
                                next.history.push(Action::response(
                                    thread,
                                    self.model.object(),
                                    request.method,
                                    ret,
                                ));
                                next.threads[t] = if *next_op
                                    < self.workload.per_thread[t].len()
                                {
                                    ThreadState::Idle { next_op: *next_op }
                                } else {
                                    ThreadState::Parked
                                };
                            }
                            StepOutcome::Stuck => {
                                next.threads[t] = ThreadState::Parked;
                            }
                            StepOutcome::Choose(_) => unreachable!("handled above"),
                        }
                        if let Some(pre) = pre {
                            next.transitions.push(Transition {
                                thread,
                                label,
                                kind: TransitionKind::Step { completed },
                                pre,
                                post: next.shared.clone(),
                                trace_before,
                                trace_after: next.trace.len(),
                                locals: Self::locals_snapshot(&next.threads),
                            });
                        }
                        vec![next]
                    }
                }
            }
            ThreadState::Parked => Vec::new(),
        }
    }

    /// Runs `count` seeded random schedules, invoking `visit` on each
    /// terminal execution (duplicates included).
    pub fn sample<F>(&self, seed: u64, count: u64, mut visit: F) -> ExploreStats
    where
        F: FnMut(&Execution<M::Shared, M::Local>),
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = ExploreStats::default();
        let mut seen: HashSet<(History, CaTrace)> = HashSet::new();
        for _ in 0..count {
            let mut state = PathState::<M> {
                shared: self.model.init_shared(),
                trace: CaTrace::new(),
                history: History::new(),
                threads: (0..self.workload.threads())
                    .map(|_| ThreadState::Idle { next_op: 0 })
                    .collect(),
                transitions: Vec::new(),
            };
            loop {
                let enabled = self.enabled_threads(&state);
                if enabled.is_empty() {
                    break;
                }
                let t = enabled[rng.gen_range(0..enabled.len())];
                let mut successors = self.advance(&state, t);
                let pick = rng.gen_range(0..successors.len());
                state = successors.swap_remove(pick);
            }
            stats.paths += 1;
            if seen.insert((state.history.clone(), state.trace.clone())) {
                stats.unique_executions += 1;
            }
            visit(&Execution {
                history: state.history,
                trace: state.trace,
                final_shared: state.shared,
                transitions: state.transitions,
            });
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::{CaElement, Method, ObjectId, Operation, Value};

    /// A two-step atomic counter: read then CAS-increment (retrying once,
    /// then sticking). Returns the value it incremented from.
    #[derive(Debug)]
    struct CasCounter;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Pc {
        Read { tries: u8 },
        Cas { seen: i64, tries: u8 },
    }

    const INC: Method = Method("inc");

    impl Model for CasCounter {
        type Shared = i64;
        type Local = Pc;

        fn object(&self) -> ObjectId {
            ObjectId(0)
        }

        fn init_shared(&self) -> i64 {
            0
        }

        fn on_invoke(&self, _t: ThreadId, _r: &OpRequest) -> Pc {
            Pc::Read { tries: 0 }
        }

        fn step(
            &self,
            shared: &mut i64,
            local: &mut Pc,
            ctx: &mut StepCtx<'_>,
        ) -> StepOutcome<Pc> {
            match *local {
                Pc::Read { tries } => {
                    *local = Pc::Cas { seen: *shared, tries };
                    StepOutcome::Continue
                }
                Pc::Cas { seen, tries } => {
                    if *shared == seen {
                        *shared = seen + 1;
                        ctx.label("INC");
                        ctx.log(CaElement::singleton(Operation::new(
                            ctx.thread,
                            ObjectId(0),
                            INC,
                            Value::Unit,
                            Value::Int(seen),
                        )));
                        StepOutcome::Done(Value::Int(seen))
                    } else if tries >= 1 {
                        StepOutcome::Stuck
                    } else {
                        *local = Pc::Read { tries: tries + 1 };
                        StepOutcome::Continue
                    }
                }
            }
        }
    }

    fn workload(threads: usize) -> Workload {
        Workload::new(vec![vec![OpRequest::new(INC, Value::Unit)]; threads])
    }

    #[test]
    fn single_thread_single_path() {
        let m = CasCounter;
        let explorer = Explorer::new(&m, workload(1));
        let mut execs = Vec::new();
        let stats = explorer.run(|e| execs.push(e.clone()));
        assert_eq!(stats.paths, 1);
        assert_eq!(stats.unique_executions, 1);
        assert_eq!(execs[0].final_shared, 1);
        assert!(execs[0].history.is_complete());
        assert_eq!(execs[0].trace.len(), 1);
    }

    #[test]
    fn two_threads_explore_contention() {
        let m = CasCounter;
        let explorer = Explorer::new(&m, workload(2));
        let mut finals = HashSet::new();
        let mut all_complete = true;
        let stats = explorer.run(|e| {
            finals.insert(e.final_shared);
            all_complete &= e.history.is_well_formed();
        });
        assert!(stats.paths > 1);
        assert!(all_complete);
        // Both increments always succeed (one retry suffices for 2 threads).
        assert_eq!(finals, HashSet::from([2]));
    }

    #[test]
    fn histories_are_well_formed_and_traces_consistent() {
        let m = CasCounter;
        let explorer = Explorer::new(&m, workload(3));
        explorer.run(|e| {
            assert!(e.history.is_well_formed());
            // Each logged element corresponds to one completed operation.
            let completed = e.history.operations().len();
            assert_eq!(e.trace.total_ops(), completed);
        });
    }

    #[test]
    fn transition_recording_captures_mutations() {
        let m = CasCounter;
        let explorer = Explorer::new(&m, workload(1)).record_transitions(true);
        explorer.run(|e| {
            assert_eq!(e.transitions.len(), 3); // invoke, read, cas
            assert_eq!(e.transitions[0].kind, TransitionKind::Invoke);
            let cas = e.transitions.last().unwrap();
            assert_eq!(cas.kind, TransitionKind::Step { completed: true });
            assert_eq!(cas.label, Some("INC"));
            assert_eq!(cas.pre, 0);
            assert_eq!(cas.post, 1);
            assert_eq!(cas.trace_after, cas.trace_before + 1);
        });
    }

    #[test]
    fn max_paths_truncates() {
        let m = CasCounter;
        let explorer = Explorer::new(&m, workload(3)).max_paths(2);
        let stats = explorer.run(|_| {});
        assert!(stats.truncated);
        assert_eq!(stats.paths, 2);
    }

    #[test]
    fn sampling_visits_requested_count() {
        let m = CasCounter;
        let explorer = Explorer::new(&m, workload(3));
        let mut n = 0;
        let stats = explorer.sample(42, 25, |e| {
            n += 1;
            assert!(e.history.is_well_formed());
        });
        assert_eq!(n, 25);
        assert_eq!(stats.paths, 25);
        assert!(stats.unique_executions >= 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = CasCounter;
        let explorer = Explorer::new(&m, workload(2));
        let mut a = Vec::new();
        let mut b = Vec::new();
        explorer.sample(7, 10, |e| a.push(e.history.clone()));
        explorer.sample(7, 10, |e| b.push(e.history.clone()));
        assert_eq!(a, b);
    }

    #[test]
    fn workload_accessors() {
        let w = workload(2);
        assert_eq!(w.threads(), 2);
        assert_eq!(w.total_ops(), 2);
        assert_eq!(w.per_thread().len(), 2);
    }
}
