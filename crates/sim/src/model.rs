//! The step-machine model interface.
//!
//! A [`Model`] is an operational rendition of a concurrent object in which
//! every step is one shared-memory access (a read, write or CAS), exactly
//! mirroring the paper's code line by line. The scheduler interleaves
//! steps of different threads; because non-shared computation is folded
//! into the adjacent shared access, the interleaving space is exactly the
//! space of memory-visible behaviours.
//!
//! Models log the paper's auxiliary trace variable `𝒯` through
//! [`StepCtx::log`] at their instrumentation points (e.g. the successful
//! `XCHG` CAS of Fig. 1), and label mutating steps with the rely/guarantee
//! action that justifies them (Fig. 4) through [`StepCtx::label`].

use std::fmt::Debug;
use std::hash::Hash;

use cal_core::{CaElement, CaTrace, Method, ObjectId, ThreadId, Value};

/// What a single step of an operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome<L> {
    /// The operation continues; shared/local state were updated in place.
    Continue,
    /// The operation finished, returning the value.
    Done(Value),
    /// A nondeterministic branch: the scheduler explores each replacement
    /// local state (shared state must not have been modified).
    Choose(Vec<L>),
    /// The operation gives up without responding (a bounded model of an
    /// unbounded retry loop); its invocation stays pending forever.
    Stuck,
}

/// Execution context handed to each step: trace logging and action
/// labelling.
#[derive(Debug)]
pub struct StepCtx<'a> {
    /// The thread executing the step.
    pub thread: ThreadId,
    trace: &'a mut CaTrace,
    label: &'a mut Option<&'static str>,
}

impl<'a> StepCtx<'a> {
    /// Creates a context writing into the given trace and label slots.
    pub fn new(
        thread: ThreadId,
        trace: &'a mut CaTrace,
        label: &'a mut Option<&'static str>,
    ) -> Self {
        StepCtx { thread, trace, label }
    }

    /// Appends a CA-element to the auxiliary trace `𝒯` (the paper's
    /// instrumented assignment `𝒯 := 𝒯 · element`).
    pub fn log(&mut self, element: CaElement) {
        self.trace.push(element);
    }

    /// Labels this step with the rely/guarantee action justifying it
    /// (e.g. `"XCHG"`). Read-only steps stay unlabelled.
    pub fn label(&mut self, action: &'static str) {
        *self.label = Some(action);
    }
}

/// An operation request: which method to invoke with which argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRequest {
    /// The method to invoke.
    pub method: Method,
    /// The argument to pass.
    pub arg: Value,
}

impl OpRequest {
    /// Creates a request.
    pub fn new(method: Method, arg: Value) -> Self {
        OpRequest { method, arg }
    }
}

/// A step-machine model of a concurrent object.
pub trait Model {
    /// Shared-memory state, cloned cheaply during exploration.
    type Shared: Clone + Eq + Hash + Debug;
    /// Per-operation local state (program counter plus registers).
    type Local: Clone + Eq + Hash + Debug;

    /// The object id operations are invoked on (the client-visible object).
    fn object(&self) -> ObjectId;

    /// The initial shared state.
    fn init_shared(&self) -> Self::Shared;

    /// Starts an operation: builds the local state for `request` invoked by
    /// `thread`.
    fn on_invoke(&self, thread: ThreadId, request: &OpRequest) -> Self::Local;

    /// Executes one shared-memory step of the operation.
    fn step(
        &self,
        shared: &mut Self::Shared,
        local: &mut Self::Local,
        ctx: &mut StepCtx<'_>,
    ) -> StepOutcome<Self::Local>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::Operation;

    #[test]
    fn ctx_logs_and_labels() {
        let mut trace = CaTrace::new();
        let mut label = None;
        let mut ctx = StepCtx::new(ThreadId(1), &mut trace, &mut label);
        ctx.label("XCHG");
        ctx.log(CaElement::singleton(Operation::new(
            ThreadId(1),
            ObjectId(0),
            Method("m"),
            Value::Unit,
            Value::Unit,
        )));
        assert_eq!(label, Some("XCHG"));
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn op_request_holds_method_and_arg() {
        let r = OpRequest::new(Method("push"), Value::Int(3));
        assert_eq!(r.method, Method("push"));
        assert_eq!(r.arg, Value::Int(3));
    }
}
