//! The exchanger specification (§4 of the paper).
//!
//! The CA-trace set of an exchanger `E` consists of sequences of elements
//! that are each either
//!
//! - `E.swap(t, v, t', v') = E.{(t, ex(v) ▷ (true, v')), (t', ex(v') ▷ (true, v))}`
//!   with `t ≠ t'` — a successful pairwise swap, or
//! - `E.{(t, ex(v) ▷ (false, v))}` — a failed exchange returning its own
//!   argument.
//!
//! This is exactly the "accurate specification" of §4: a successful
//! exchange overlaps precisely the operation it swapped with, and a failed
//! exchange overlaps nothing.

use cal_core::spec::{CaSpec, Invocation};
use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};

use crate::vocab::EXCHANGE;

/// The concurrency-aware exchanger specification for one exchanger object.
///
/// # Examples
///
/// ```
/// use cal_core::spec::CaSpec;
/// use cal_core::{CaTrace, ObjectId, ThreadId};
/// use cal_specs::exchanger::{swap_element, ExchangerSpec};
/// let e = ObjectId(0);
/// let spec = ExchangerSpec::new(e);
/// let trace = CaTrace::from_elements(vec![
///     swap_element(e, ThreadId(1), 3, ThreadId(2), 4),
/// ]);
/// assert!(spec.accepts(&trace));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangerSpec {
    object: ObjectId,
}

impl ExchangerSpec {
    /// Creates the specification of exchanger `object`.
    pub fn new(object: ObjectId) -> Self {
        ExchangerSpec { object }
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Returns `true` if `element` is a legal exchanger element of this
    /// object: a matched swap pair or a singleton failure.
    pub fn is_legal_element(&self, element: &CaElement) -> bool {
        element.object() == self.object && is_exchange_shape(element)
    }
}

/// Shape check shared by the exchanger and the elimination array: swap pair
/// or singleton failure, on whatever object the element belongs to.
pub(crate) fn is_exchange_shape(element: &CaElement) -> bool {
    match element.ops() {
        [a] => {
            a.method == EXCHANGE
                && matches!((a.ret.as_pair(), a.arg.as_int()),
                            (Some((false, r)), Some(v)) if r == v)
        }
        [a, b] => {
            a.method == EXCHANGE
                && b.method == EXCHANGE
                && a.thread != b.thread
                && matches!(
                    (a.ret.as_pair(), b.ret.as_pair(), a.arg.as_int(), b.arg.as_int()),
                    (Some((true, ra)), Some((true, rb)), Some(va), Some(vb))
                        if ra == vb && rb == va
                )
        }
        _ => false,
    }
}

/// Peer-aware completions shared by the exchanger and the elimination
/// array: fail with the own argument, or succeed with any peer's argument.
pub(crate) fn exchange_completions(inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
    let mut out = Vec::with_capacity(1 + peers.len());
    if let Some(v) = inv.arg.as_int() {
        out.push(Value::Pair(false, v));
    }
    out.extend(peers.iter().filter_map(|p| Some(Value::Pair(true, p.arg.as_int()?))));
    out
}

impl CaSpec for ExchangerSpec {
    type State = ();

    fn initial(&self) -> Self::State {}

    fn step(&self, _state: &Self::State, element: &CaElement) -> Option<Self::State> {
        self.is_legal_element(element).then_some(())
    }

    fn max_element_size(&self) -> usize {
        2
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        exchange_completions(inv, &[])
    }

    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        exchange_completions(inv, peers)
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then_some(*self)
    }
}

/// Builds the paper's `E.swap(t, v, t', v')` element: `t` exchanges `v` for
/// `v'` while `t'` exchanges `v'` for `v`.
///
/// # Panics
///
/// Panics if `t == t2` — a thread cannot swap with itself.
pub fn swap_element(object: ObjectId, t: ThreadId, v: i64, t2: ThreadId, v2: i64) -> CaElement {
    CaElement::pair(
        Operation::new(t, object, EXCHANGE, Value::Int(v), Value::Pair(true, v2)),
        Operation::new(t2, object, EXCHANGE, Value::Int(v2), Value::Pair(true, v)),
    )
    .expect("distinct threads swapping on one object")
}

/// Builds the failure element `E.{(t, ex(v) ▷ (false, v))}`.
pub fn fail_element(object: ObjectId, t: ThreadId, v: i64) -> CaElement {
    CaElement::singleton(Operation::new(t, object, EXCHANGE, Value::Int(v), Value::Pair(false, v)))
}

/// The successful-exchange operation `(t, ex(v) ▷ (true, got))`.
pub fn exchange_ok(object: ObjectId, t: ThreadId, v: i64, got: i64) -> Operation {
    Operation::new(t, object, EXCHANGE, Value::Int(v), Value::Pair(true, got))
}

/// The failed-exchange operation `(t, ex(v) ▷ (false, v))`.
pub fn exchange_fail(object: ObjectId, t: ThreadId, v: i64) -> Operation {
    Operation::new(t, object, EXCHANGE, Value::Int(v), Value::Pair(false, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::check::is_cal;
    use cal_core::{Action, CaTrace, History};

    const E: ObjectId = ObjectId(0);

    fn spec() -> ExchangerSpec {
        ExchangerSpec::new(E)
    }

    #[test]
    fn swap_and_fail_elements_are_legal() {
        let s = spec();
        assert!(s.is_legal_element(&swap_element(E, ThreadId(1), 3, ThreadId(2), 4)));
        assert!(s.is_legal_element(&fail_element(E, ThreadId(3), 7)));
    }

    #[test]
    fn self_swap_values_must_cross() {
        let bad = CaElement::pair(
            exchange_ok(E, ThreadId(1), 3, 9),
            exchange_ok(E, ThreadId(2), 4, 3),
        )
        .unwrap();
        assert!(!spec().is_legal_element(&bad));
    }

    #[test]
    fn lone_success_is_illegal() {
        let bad = CaElement::singleton(exchange_ok(E, ThreadId(1), 3, 4));
        assert!(!spec().is_legal_element(&bad));
    }

    #[test]
    fn fail_must_return_own_argument() {
        let bad = CaElement::singleton(Operation::new(
            ThreadId(1),
            E,
            EXCHANGE,
            Value::Int(3),
            Value::Pair(false, 4),
        ));
        assert!(!spec().is_legal_element(&bad));
    }

    #[test]
    fn wrong_object_rejected() {
        let other = swap_element(ObjectId(5), ThreadId(1), 3, ThreadId(2), 4);
        assert!(!spec().is_legal_element(&other));
    }

    #[test]
    fn wrong_method_rejected() {
        let bad = CaElement::singleton(Operation::new(
            ThreadId(1),
            E,
            crate::vocab::PUSH,
            Value::Int(3),
            Value::Pair(false, 3),
        ));
        assert!(!spec().is_legal_element(&bad));
    }

    #[test]
    fn accepts_any_sequence_of_legal_elements() {
        let t = CaTrace::from_elements(vec![
            fail_element(E, ThreadId(1), 1),
            swap_element(E, ThreadId(1), 3, ThreadId(2), 4),
            swap_element(E, ThreadId(3), 5, ThreadId(1), 6),
            fail_element(E, ThreadId(2), 2),
        ]);
        assert!(spec().accepts(&t));
    }

    #[test]
    fn concurrent_swap_history_is_cal() {
        let h = History::from_actions(vec![
            Action::invoke(ThreadId(1), E, EXCHANGE, Value::Int(3)),
            Action::invoke(ThreadId(2), E, EXCHANGE, Value::Int(4)),
            Action::response(ThreadId(1), E, EXCHANGE, Value::Pair(true, 4)),
            Action::response(ThreadId(2), E, EXCHANGE, Value::Pair(true, 3)),
        ]);
        assert!(is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn sequential_swap_history_is_not_cal() {
        let h = History::from_actions(vec![
            Action::invoke(ThreadId(1), E, EXCHANGE, Value::Int(3)),
            Action::response(ThreadId(1), E, EXCHANGE, Value::Pair(true, 4)),
            Action::invoke(ThreadId(2), E, EXCHANGE, Value::Int(4)),
            Action::response(ThreadId(2), E, EXCHANGE, Value::Pair(true, 3)),
        ]);
        assert!(!is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn completions_propose_failure_and_peer_successes() {
        let s = spec();
        let inv = Invocation::new(ThreadId(1), E, EXCHANGE, Value::Int(3));
        assert_eq!(s.completions_of(&inv), vec![Value::Pair(false, 3)]);
        let peer = Invocation::new(ThreadId(2), E, EXCHANGE, Value::Int(9));
        let among = s.completions_among(&inv, &[peer]);
        assert!(among.contains(&Value::Pair(false, 3)));
        assert!(among.contains(&Value::Pair(true, 9)));
    }
}
