//! The elimination array specification and its view function `F_AR` (§5).
//!
//! The elimination array `AR` encapsulates exchangers `E[0], …, E[K-1]` and
//! exposes *the same specification surface as a single exchanger*. Its view
//! function is `F_AR(E[i].S) = (AR.S)`: an exchange done by any encapsulated
//! exchanger is made to look like an exchange on the array itself, hiding
//! the implementation from clients such as the elimination stack.

use cal_core::compose::TraceMap;
use cal_core::spec::{CaSpec, Invocation};
use cal_core::{CaElement, CaTrace, ObjectId, Operation, Value};

use crate::exchanger::{exchange_completions, is_exchange_shape};

/// The concurrency-aware specification of an elimination array: identical
/// element shapes to [`crate::exchanger::ExchangerSpec`], on the array
/// object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElimArraySpec {
    object: ObjectId,
}

impl ElimArraySpec {
    /// Creates the specification of elimination array `object`.
    pub fn new(object: ObjectId) -> Self {
        ElimArraySpec { object }
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Returns `true` if `element` is a legal element of this array.
    pub fn is_legal_element(&self, element: &CaElement) -> bool {
        element.object() == self.object && is_exchange_shape(element)
    }
}

impl CaSpec for ElimArraySpec {
    type State = ();

    fn initial(&self) -> Self::State {}

    fn step(&self, _state: &Self::State, element: &CaElement) -> Option<Self::State> {
        self.is_legal_element(element).then_some(())
    }

    fn max_element_size(&self) -> usize {
        2
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        exchange_completions(inv, &[])
    }

    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        exchange_completions(inv, peers)
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then_some(*self)
    }
}

/// The view function `F_AR`: renames CA-elements of the encapsulated
/// exchangers to CA-elements of the array. Elements of other objects are
/// left to the total extension.
///
/// # Examples
///
/// ```
/// use cal_core::compose::TraceMap;
/// use cal_core::{CaTrace, ObjectId, ThreadId};
/// use cal_specs::elim_array::FArMap;
/// use cal_specs::exchanger::swap_element;
/// let ar = ObjectId(0);
/// let slots = vec![ObjectId(10), ObjectId(11)];
/// let f = FArMap::new(ar, slots.clone());
/// let t = CaTrace::from_elements(vec![swap_element(slots[1], ThreadId(1), 3, ThreadId(2), 4)]);
/// let mapped = f.apply(&t);
/// assert_eq!(mapped.elements()[0].object(), ar);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FArMap {
    array: ObjectId,
    exchangers: Vec<ObjectId>,
}

impl FArMap {
    /// Creates `F_AR` for `array` encapsulating the given exchanger
    /// objects.
    pub fn new(array: ObjectId, exchangers: Vec<ObjectId>) -> Self {
        FArMap { array, exchangers }
    }

    /// The array object.
    pub fn array(&self) -> ObjectId {
        self.array
    }

    /// The encapsulated exchanger objects.
    pub fn exchangers(&self) -> &[ObjectId] {
        &self.exchangers
    }
}

impl TraceMap for FArMap {
    fn map_element(&self, element: &CaElement) -> Option<CaTrace> {
        if !self.exchangers.contains(&element.object()) {
            return None;
        }
        let renamed: Vec<Operation> = element
            .ops()
            .iter()
            .map(|op| Operation::new(op.thread, self.array, op.method, op.arg, op.ret))
            .collect();
        let renamed =
            CaElement::new(self.array, renamed).expect("renaming preserves element validity");
        Some(CaTrace::from_elements(vec![renamed]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchanger::{fail_element, swap_element};
    use cal_core::spec::CaSpec;
    use cal_core::ThreadId;

    const AR: ObjectId = ObjectId(0);
    const E0: ObjectId = ObjectId(10);
    const E1: ObjectId = ObjectId(11);

    fn far() -> FArMap {
        FArMap::new(AR, vec![E0, E1])
    }

    #[test]
    fn far_renames_any_slot_to_array() {
        let t = CaTrace::from_elements(vec![
            swap_element(E0, ThreadId(1), 3, ThreadId(2), 4),
            fail_element(E1, ThreadId(3), 7),
        ]);
        let mapped = far().apply(&t);
        assert_eq!(mapped.len(), 2);
        assert!(mapped.elements().iter().all(|e| e.object() == AR));
    }

    #[test]
    fn far_leaves_foreign_objects_alone() {
        let other = fail_element(ObjectId(99), ThreadId(1), 1);
        let t = CaTrace::from_elements(vec![other.clone()]);
        let mapped = far().apply(&t);
        assert_eq!(mapped.elements()[0], other);
    }

    #[test]
    fn mapped_trace_satisfies_array_spec() {
        // The paper's compositionality argument: any trace of legal
        // exchanger elements maps to a trace of legal array elements.
        let t = CaTrace::from_elements(vec![
            swap_element(E0, ThreadId(1), 3, ThreadId(2), 4),
            fail_element(E1, ThreadId(3), 7),
            swap_element(E1, ThreadId(2), 5, ThreadId(3), 6),
        ]);
        let mapped = far().apply(&t);
        assert!(ElimArraySpec::new(AR).accepts(&mapped));
    }

    #[test]
    fn far_is_idempotent() {
        let t = CaTrace::from_elements(vec![swap_element(E0, ThreadId(1), 3, ThreadId(2), 4)]);
        let once = far().apply(&t);
        assert_eq!(far().apply(&once), once);
    }

    #[test]
    fn array_spec_judges_shapes_like_exchanger() {
        let s = ElimArraySpec::new(AR);
        assert!(s.is_legal_element(&swap_element(AR, ThreadId(1), 3, ThreadId(2), 4)));
        assert!(s.is_legal_element(&fail_element(AR, ThreadId(1), 9)));
        assert!(!s.is_legal_element(&fail_element(E0, ThreadId(1), 9)));
        assert_eq!(s.object(), AR);
        assert_eq!(s.max_element_size(), 2);
    }
}
