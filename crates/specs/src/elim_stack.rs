//! The elimination stack's view function `F_ES` and its modular
//! verification path (§5).
//!
//! The elimination stack `ES` encapsulates a central stack `S` and an
//! elimination array `AR`. Its view function `F_ES` picks as linearization
//! points the successful pushes and pops of `S` and the successful
//! exchanges of `AR` in which one side offered the pop sentinel `∞`:
//!
//! ```text
//! F_ES(S.{(t, push(n) ▷ true)})      = ES.{(t, push(n) ▷ true)}
//! F_ES(S.{(t, pop() ▷ (true, n))})   = ES.{(t, pop() ▷ (true, n))}
//! F_ES(AR.{(t, ex(n) ▷ (true, ∞)),
//!          (t', ex(∞) ▷ (true, n))}) = ES.{(t, push(n) ▷ true)} ·
//!                                      ES.{(t', pop() ▷ (true, n))}   (n ≠ ∞)
//! F_ES(S._)  = ε          F_ES(AR._) = ε
//! ```
//!
//! In the elimination case the push is linearized *immediately before* the
//! pop — the paper's "imaginary sequence of abstract operations" realized
//! by one CA-element. The composed view of a global trace is therefore a
//! sequence of abstract `ES` stack operations, checkable against the plain
//! sequential [`StackSpec`]: this is the modular proof of the elimination
//! stack, never peeking inside `S` or `AR`.

use cal_core::compose::TraceMap;
use cal_core::spec::SeqSpec;
use cal_core::{CaElement, CaTrace, ObjectId, Operation, Value};

use crate::stack::StackSpec;
use crate::vocab::{POP, POP_SENTINEL, PUSH};

/// The view function `F_ES` of the elimination stack.
///
/// # Examples
///
/// ```
/// use cal_core::compose::TraceMap;
/// use cal_core::{CaTrace, ObjectId, ThreadId};
/// use cal_specs::elim_stack::FEsMap;
/// use cal_specs::exchanger::swap_element;
/// use cal_specs::vocab::POP_SENTINEL;
/// let (es, s, ar) = (ObjectId(0), ObjectId(1), ObjectId(2));
/// let f = FEsMap::new(es, s, ar);
/// // A pusher offering 42 eliminated by a popper offering ∞:
/// let elim = swap_element(ar, ThreadId(1), 42, ThreadId(2), POP_SENTINEL);
/// let mapped = f.apply(&CaTrace::from_elements(vec![elim]));
/// assert_eq!(mapped.len(), 2); // ES.push(42) · ES.pop() ▷ 42
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FEsMap {
    es: ObjectId,
    stack: ObjectId,
    array: ObjectId,
}

impl FEsMap {
    /// Creates `F_ES` for elimination stack `es` encapsulating central
    /// stack `stack` and elimination array `array`.
    pub fn new(es: ObjectId, stack: ObjectId, array: ObjectId) -> Self {
        FEsMap { es, stack, array }
    }

    /// The elimination stack object.
    pub fn es(&self) -> ObjectId {
        self.es
    }

    /// The central stack subobject.
    pub fn stack(&self) -> ObjectId {
        self.stack
    }

    /// The elimination array subobject.
    pub fn array(&self) -> ObjectId {
        self.array
    }

    fn map_stack_element(&self, element: &CaElement) -> CaTrace {
        // Only singleton successful operations survive.
        let [op] = element.ops() else { return CaTrace::new() };
        let keep = match op.method {
            PUSH => op.ret == Value::Bool(true),
            POP => matches!(op.ret.as_pair(), Some((true, _))),
            _ => false,
        };
        if keep {
            let lifted = Operation::new(op.thread, self.es, op.method, op.arg, op.ret);
            CaTrace::from_elements(vec![CaElement::singleton(lifted)])
        } else {
            CaTrace::new()
        }
    }

    fn map_array_element(&self, element: &CaElement) -> CaTrace {
        // Only a successful exchange where exactly one side offered the pop
        // sentinel becomes an elimination; everything else is hidden.
        let [a, b] = element.ops() else { return CaTrace::new() };
        let (Some((true, _)), Some((true, _))) = (a.ret.as_pair(), b.ret.as_pair()) else {
            return CaTrace::new();
        };
        let (pusher, popper) = match (a.arg.as_int(), b.arg.as_int()) {
            (Some(va), Some(vb)) if va != POP_SENTINEL && vb == POP_SENTINEL => (a, b),
            (Some(va), Some(vb)) if vb != POP_SENTINEL && va == POP_SENTINEL => (b, a),
            _ => return CaTrace::new(),
        };
        let n = pusher.arg.as_int().expect("checked above");
        // Push linearized immediately before the pop.
        let push = Operation::new(pusher.thread, self.es, PUSH, Value::Int(n), Value::Bool(true));
        let pop =
            Operation::new(popper.thread, self.es, POP, Value::Unit, Value::Pair(true, n));
        CaTrace::from_elements(vec![CaElement::singleton(push), CaElement::singleton(pop)])
    }
}

impl TraceMap for FEsMap {
    fn map_element(&self, element: &CaElement) -> Option<CaTrace> {
        if element.object() == self.stack {
            Some(self.map_stack_element(element))
        } else if element.object() == self.array {
            Some(self.map_array_element(element))
        } else {
            None
        }
    }
}

/// The modular correctness check of the elimination stack (§5): maps a
/// combined subobject trace (CA-elements of `S` and `AR`) through `F_ES`
/// and replays the resulting abstract operations against the sequential
/// stack specification.
///
/// Returns `true` iff the mapped trace is a well-defined stack history —
/// i.e. the elimination stack behaves like a stack, assuming its
/// subobjects met their own (independently verified) specifications.
pub fn modular_stack_check(f_es: &FEsMap, subobject_trace: &CaTrace) -> bool {
    let mapped = f_es.apply(subobject_trace);
    let spec = StackSpec::total(f_es.es());
    let mut state = spec.initial();
    for element in mapped.elements() {
        let [op] = element.ops() else { return false };
        match spec.apply(&state, op) {
            Some(next) => state = next,
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchanger::{fail_element, swap_element};
    use crate::stack::{pop_fail, pop_ok, push_fail, push_ok};
    use cal_core::ThreadId;

    const ES: ObjectId = ObjectId(0);
    const S: ObjectId = ObjectId(1);
    const AR: ObjectId = ObjectId(2);

    fn fes() -> FEsMap {
        FEsMap::new(ES, S, AR)
    }

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn successful_stack_ops_lifted() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(push_ok(S, t(1), 5)),
            CaElement::singleton(pop_ok(S, t(2), 5)),
        ]);
        let mapped = fes().apply(&tr);
        assert_eq!(mapped.len(), 2);
        assert!(mapped.elements().iter().all(|e| e.object() == ES));
    }

    #[test]
    fn failed_stack_ops_hidden() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(push_fail(S, t(1), 5)),
            CaElement::singleton(pop_fail(S, t(2))),
        ]);
        assert!(fes().apply(&tr).is_empty());
    }

    #[test]
    fn elimination_becomes_push_then_pop() {
        let elim = swap_element(AR, t(1), 42, t(2), POP_SENTINEL);
        let mapped = fes().apply(&CaTrace::from_elements(vec![elim]));
        assert_eq!(mapped.len(), 2);
        let push = &mapped.elements()[0].ops()[0];
        let pop = &mapped.elements()[1].ops()[0];
        assert_eq!(push.method, PUSH);
        assert_eq!(push.thread, t(1));
        assert_eq!(push.arg, Value::Int(42));
        assert_eq!(pop.method, POP);
        assert_eq!(pop.thread, t(2));
        assert_eq!(pop.ret, Value::Pair(true, 42));
    }

    #[test]
    fn elimination_orientation_is_detected() {
        // Popper listed first in the element: same mapping.
        let elim = swap_element(AR, t(2), POP_SENTINEL, t(1), 42);
        let mapped = fes().apply(&CaTrace::from_elements(vec![elim]));
        assert_eq!(mapped.len(), 2);
        assert_eq!(mapped.elements()[0].ops()[0].method, PUSH);
        assert_eq!(mapped.elements()[0].ops()[0].thread, t(1));
    }

    #[test]
    fn same_operation_exchanges_hidden() {
        // Two pushers exchanging, or two poppers: no elimination.
        let push_push = swap_element(AR, t(1), 5, t(2), 6);
        let pop_pop = swap_element(AR, t(1), POP_SENTINEL, t(2), POP_SENTINEL);
        let failed = fail_element(AR, t(3), 9);
        let tr = CaTrace::from_elements(vec![push_push, pop_pop, failed]);
        assert!(fes().apply(&tr).is_empty());
    }

    #[test]
    fn foreign_elements_pass_through() {
        let other = fail_element(ObjectId(77), t(1), 1);
        let mapped = fes().apply(&CaTrace::from_elements(vec![other.clone()]));
        assert_eq!(mapped.elements(), &[other]);
    }

    #[test]
    fn modular_check_accepts_interleaved_stack_and_elimination() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(push_ok(S, t(1), 1)),
            swap_element(AR, t(2), 42, t(3), POP_SENTINEL), // eliminated pair
            CaElement::singleton(pop_ok(S, t(3), 1)),
            CaElement::singleton(pop_fail(S, t(2))),
            fail_element(AR, t(1), 5),
        ]);
        assert!(modular_stack_check(&fes(), &tr));
    }

    #[test]
    fn modular_check_rejects_wrong_pop() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(push_ok(S, t(1), 1)),
            CaElement::singleton(pop_ok(S, t(2), 999)),
        ]);
        assert!(!modular_stack_check(&fes(), &tr));
    }

    #[test]
    fn modular_check_rejects_pop_before_push() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(pop_ok(S, t(2), 1)),
            CaElement::singleton(push_ok(S, t(1), 1)),
        ]);
        assert!(!modular_stack_check(&fes(), &tr));
    }

    #[test]
    fn fes_is_idempotent_on_mapped_output() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(push_ok(S, t(1), 1)),
            swap_element(AR, t(2), 42, t(3), POP_SENTINEL),
        ]);
        let once = fes().apply(&tr);
        // Mapped elements live on ES, which F_ES does not translate.
        assert_eq!(fes().apply(&once), once);
    }

    #[test]
    fn accessors() {
        let f = fes();
        assert_eq!(f.es(), ES);
        assert_eq!(f.stack(), S);
        assert_eq!(f.array(), AR);
    }
}
