//! A *dual stack* specification (Scherer & Scott, DISC 2004), the §6
//! example of how CA-histories streamline dual data structures.
//!
//! A dual stack's `pop` on an empty stack does not fail — it installs a
//! *reservation* and waits; a later `push` *fulfills* the reservation and
//! both operations complete. Scherer & Scott specify this with **two**
//! linearization points per waiting operation (the "request" and the
//! "follow-up"). With CAL a single CA-element does the job:
//!
//! - `S.{(t, push(v) ▷ ())}` — a plain push (always legal);
//! - `S.{(t, pop() ▷ v)}` — a plain pop (stack non-empty, `v` on top);
//! - `S.{(t, push(v) ▷ ()), (t', pop() ▷ v)}` — a *fulfillment*: a push
//!   and a waiting pop take effect simultaneously, legal only on an empty
//!   stack (a waiting pop exists only when there is no data).

use cal_core::spec::{CaSpec, Invocation};
use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};

use crate::vocab::{CANCEL_SENTINEL, POP, PUSH};

/// The concurrency-aware dual stack specification.
///
/// # Examples
///
/// ```
/// use cal_core::spec::CaSpec;
/// use cal_core::{CaTrace, ObjectId, ThreadId};
/// use cal_specs::dual_stack::{fulfillment_element, DualStackSpec};
/// let s = ObjectId(0);
/// let spec = DualStackSpec::new(s);
/// let t = CaTrace::from_elements(vec![
///     fulfillment_element(s, ThreadId(1), 5, ThreadId(2)),
/// ]);
/// assert!(spec.accepts(&t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualStackSpec {
    object: ObjectId,
    timeouts: bool,
}

impl DualStackSpec {
    /// Creates the specification of dual stack `object`. Every `pop`
    /// must return a value; timed-out reservations are rejected.
    pub fn new(object: ObjectId) -> Self {
        DualStackSpec { object, timeouts: false }
    }

    /// Like [`DualStackSpec::new`], but additionally admits a `pop` that
    /// gave up waiting: a singleton element returning
    /// [`CANCEL_SENTINEL`], a no-op on the stack contents. This is the
    /// specification of the *bounded* `try_pop` used by chaos workloads,
    /// where an abandoned or starved popper may time out legitimately.
    pub fn with_timeouts(object: ObjectId) -> Self {
        DualStackSpec { object, timeouts: true }
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }
}

impl CaSpec for DualStackSpec {
    /// The data-stack contents, bottom first.
    type State = Vec<i64>;

    fn initial(&self) -> Vec<i64> {
        Vec::new()
    }

    fn step(&self, state: &Vec<i64>, element: &CaElement) -> Option<Vec<i64>> {
        if element.object() != self.object {
            return None;
        }
        match element.ops() {
            [op] if op.method == PUSH => {
                // Plain push.
                if op.ret != Value::Unit {
                    return None;
                }
                let mut next = state.clone();
                next.push(op.arg.as_int()?);
                Some(next)
            }
            [op] if op.method == POP => {
                let v = op.ret.as_int()?;
                if self.timeouts && v == CANCEL_SENTINEL {
                    // A cancelled reservation: no effect on the stack.
                    return Some(state.clone());
                }
                // Plain pop: v on top.
                (state.last() == Some(&v)).then(|| {
                    let mut next = state.clone();
                    next.pop();
                    next
                })
            }
            [a, b] => {
                let (push, pop) = match (a.method, b.method) {
                    (PUSH, POP) => (a, b),
                    (POP, PUSH) => (b, a),
                    _ => return None,
                };
                // Fulfillment: only on an empty data stack, values match.
                (state.is_empty()
                    && push.ret == Value::Unit
                    && pop.ret == push.arg
                    && push.thread != pop.thread)
                    .then(|| state.clone())
            }
            _ => None,
        }
    }

    fn max_element_size(&self) -> usize {
        2
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        match inv.method {
            PUSH => vec![Value::Unit],
            POP if self.timeouts => vec![Value::Int(CANCEL_SENTINEL)],
            _ => Vec::new(),
        }
    }

    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        let mut out = self.completions_of(inv);
        if inv.method == POP {
            // A pending pop can be fulfilled by a peer push.
            out.extend(peers.iter().filter(|p| p.method == PUSH).map(|p| p.arg));
        }
        out
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then_some(*self)
    }
}

/// The operation `(t, push(v) ▷ ())` of a dual stack.
pub fn dual_push_op(object: ObjectId, t: ThreadId, v: i64) -> Operation {
    Operation::new(t, object, PUSH, Value::Int(v), Value::Unit)
}

/// The operation `(t, pop() ▷ v)` of a dual stack.
pub fn dual_pop_op(object: ObjectId, t: ThreadId, v: i64) -> Operation {
    Operation::new(t, object, POP, Value::Unit, Value::Int(v))
}

/// The fulfillment element: `pusher` hands `v` to the waiting `popper`.
///
/// # Panics
///
/// Panics if `pusher == popper`.
pub fn fulfillment_element(
    object: ObjectId,
    pusher: ThreadId,
    v: i64,
    popper: ThreadId,
) -> CaElement {
    CaElement::pair(dual_push_op(object, pusher, v), dual_pop_op(object, popper, v))
        .expect("pusher and popper are distinct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::check::is_cal;
    use cal_core::{CaTrace, History};

    const S: ObjectId = ObjectId(0);

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn spec() -> DualStackSpec {
        DualStackSpec::new(S)
    }

    #[test]
    fn plain_lifo_accepted() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(dual_push_op(S, t(1), 1)),
            CaElement::singleton(dual_push_op(S, t(2), 2)),
            CaElement::singleton(dual_pop_op(S, t(1), 2)),
            CaElement::singleton(dual_pop_op(S, t(2), 1)),
        ]);
        assert!(spec().accepts(&tr));
    }

    #[test]
    fn wrong_pop_order_rejected() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(dual_push_op(S, t(1), 1)),
            CaElement::singleton(dual_push_op(S, t(2), 2)),
            CaElement::singleton(dual_pop_op(S, t(1), 1)), // not LIFO
        ]);
        assert!(!spec().accepts(&tr));
    }

    #[test]
    fn fulfillment_requires_empty_stack() {
        let ok = CaTrace::from_elements(vec![fulfillment_element(S, t(1), 5, t(2))]);
        assert!(spec().accepts(&ok));
        let bad = CaTrace::from_elements(vec![
            CaElement::singleton(dual_push_op(S, t(3), 9)),
            fulfillment_element(S, t(1), 5, t(2)), // data present: pop must take 9
        ]);
        assert!(!spec().accepts(&bad));
    }

    #[test]
    fn fulfillment_values_must_match() {
        let bad = CaElement::pair(dual_push_op(S, t(1), 5), dual_pop_op(S, t(2), 6)).unwrap();
        assert!(!spec().accepts(&CaTrace::from_elements(vec![bad])));
    }

    #[test]
    fn pop_on_empty_never_returns_alone() {
        let lone = CaElement::singleton(dual_pop_op(S, t(1), 5));
        assert!(!spec().accepts(&CaTrace::from_elements(vec![lone])));
    }

    #[test]
    fn timed_out_pop_needs_the_timeout_spec() {
        let cancelled = CaElement::singleton(dual_pop_op(S, t(1), CANCEL_SENTINEL));
        let tr = CaTrace::from_elements(vec![cancelled]);
        assert!(!spec().accepts(&tr), "strict spec must reject timeouts");
        assert!(DualStackSpec::with_timeouts(S).accepts(&tr));
    }

    #[test]
    fn timed_out_pop_is_a_noop_on_the_stack() {
        let tr = CaTrace::from_elements(vec![
            CaElement::singleton(dual_push_op(S, t(1), 7)),
            CaElement::singleton(dual_pop_op(S, t(2), CANCEL_SENTINEL)),
            CaElement::singleton(dual_pop_op(S, t(1), 7)), // 7 still on top
        ]);
        assert!(DualStackSpec::with_timeouts(S).accepts(&tr));
    }

    #[test]
    fn waiting_pop_fulfilled_by_overlapping_push_is_cal() {
        // pop starts on the empty stack, waits; push arrives and fulfills.
        let push = dual_push_op(S, t(1), 5);
        let pop = dual_pop_op(S, t(2), 5);
        let h = History::from_actions(vec![
            pop.invocation(),
            push.invocation(),
            push.response(),
            pop.response(),
        ]);
        assert!(is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn pop_completing_before_its_push_starts_is_not_cal() {
        // The pop returned 5 before any push(5) was even invoked.
        let push = dual_push_op(S, t(1), 5);
        let pop = dual_pop_op(S, t(2), 5);
        let h = History::from_actions(vec![
            pop.invocation(),
            pop.response(),
            push.invocation(),
            push.response(),
        ]);
        assert!(!is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn pending_pop_completed_against_pending_push() {
        let push = dual_push_op(S, t(1), 5);
        let h = History::from_actions(vec![
            Operation::new(t(2), S, POP, Value::Unit, Value::Int(5)).invocation(),
            push.invocation(),
            push.response(),
        ]);
        assert!(is_cal(&h, &spec()).unwrap());
    }
}
