//! Sequential stack specifications (§4 "Stack specification").
//!
//! The paper specifies stacks via *well-defined* sequential histories: a
//! history of stack operations is well-defined over an initial stack if
//! executing the **successful** operations in order is possible and yields
//! the reported pop results; failed operations (the contention failures of
//! Fig. 2's central stack) are no-ops.
//!
//! [`StackSpec`] is that acceptor. The [`StackSpec::failing`] variant
//! admits spurious failures (Fig. 2's `S`, whose `push`/`pop` fail under
//! CAS contention); the [`StackSpec::total`] variant admits failures only
//! for `pop` on an empty stack (a conventional total LIFO stack, and the
//! abstract specification of the elimination stack).

use cal_core::spec::{Invocation, SeqSpec};
use cal_core::{ObjectId, Operation, Value};

use crate::vocab::{POP, PUSH};

/// The abstract state of a stack: its contents, bottom first.
pub type StackState = Vec<i64>;

/// A sequential LIFO stack specification.
///
/// # Examples
///
/// ```
/// use cal_core::spec::SeqSpec;
/// use cal_core::{ObjectId, ThreadId};
/// use cal_specs::stack::{pop_ok, push_ok, StackSpec};
/// let s = ObjectId(0);
/// let spec = StackSpec::total(s);
/// assert!(spec.accepts(&[
///     push_ok(s, ThreadId(1), 10),
///     push_ok(s, ThreadId(2), 20),
///     pop_ok(s, ThreadId(1), 20),
///     pop_ok(s, ThreadId(2), 10),
/// ]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackSpec {
    object: ObjectId,
    spurious_failures: bool,
    /// Values proposed when completing a pending `pop` as successful.
    pop_universe: Vec<i64>,
}

impl StackSpec {
    /// A total stack: `push` always succeeds, `pop` fails only on empty.
    pub fn total(object: ObjectId) -> Self {
        StackSpec { object, spurious_failures: false, pop_universe: Vec::new() }
    }

    /// Fig. 2's central stack: `push` and `pop` may additionally fail
    /// spuriously (CAS contention), leaving the stack unchanged.
    pub fn failing(object: ObjectId) -> Self {
        StackSpec { object, spurious_failures: true, pop_universe: Vec::new() }
    }

    /// Sets the value universe used to complete pending `pop` invocations
    /// as successful. Without it, pending pops are only completed as
    /// failures (or dropped).
    pub fn with_pop_universe(mut self, universe: Vec<i64>) -> Self {
        self.pop_universe = universe;
        self
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Whether spurious (contention) failures are admitted.
    pub fn admits_spurious_failures(&self) -> bool {
        self.spurious_failures
    }
}

impl SeqSpec for StackSpec {
    type State = StackState;

    fn initial(&self) -> StackState {
        Vec::new()
    }

    fn apply(&self, state: &StackState, op: &Operation) -> Option<StackState> {
        if op.object != self.object {
            return None;
        }
        match op.method {
            PUSH => {
                let v = op.arg.as_int()?;
                match op.ret.as_bool()? {
                    true => {
                        let mut next = state.clone();
                        next.push(v);
                        Some(next)
                    }
                    false => self.spurious_failures.then(|| state.clone()),
                }
            }
            POP => {
                let (ok, v) = op.ret.as_pair()?;
                if ok {
                    (state.last() == Some(&v)).then(|| {
                        let mut next = state.clone();
                        next.pop();
                        next
                    })
                } else if v != 0 {
                    None // failed pops report (false, 0)
                } else if self.spurious_failures || state.is_empty() {
                    Some(state.clone())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        match inv.method {
            PUSH => {
                let mut out = vec![Value::Bool(true)];
                if self.spurious_failures {
                    out.push(Value::Bool(false));
                }
                out
            }
            POP => {
                let mut out = vec![Value::Pair(false, 0)];
                out.extend(self.pop_universe.iter().map(|&v| Value::Pair(true, v)));
                out
            }
            _ => Vec::new(),
        }
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then(|| self.clone())
    }
}

/// The operation `(t, push(v) ▷ true)`.
pub fn push_ok(object: ObjectId, t: cal_core::ThreadId, v: i64) -> Operation {
    Operation::new(t, object, PUSH, Value::Int(v), Value::Bool(true))
}

/// The operation `(t, push(v) ▷ false)` — a contention failure.
pub fn push_fail(object: ObjectId, t: cal_core::ThreadId, v: i64) -> Operation {
    Operation::new(t, object, PUSH, Value::Int(v), Value::Bool(false))
}

/// The operation `(t, pop() ▷ (true, v))`.
pub fn pop_ok(object: ObjectId, t: cal_core::ThreadId, v: i64) -> Operation {
    Operation::new(t, object, POP, Value::Unit, Value::Pair(true, v))
}

/// The operation `(t, pop() ▷ (false, 0))` — empty or contention failure.
pub fn pop_fail(object: ObjectId, t: cal_core::ThreadId) -> Operation {
    Operation::new(t, object, POP, Value::Unit, Value::Pair(false, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::seqlin::is_linearizable;
    use cal_core::spec::SeqSpec;
    use cal_core::{History, ThreadId};

    const S: ObjectId = ObjectId(0);

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn lifo_order_enforced() {
        let spec = StackSpec::total(S);
        assert!(spec.accepts(&[push_ok(S, t(1), 1), push_ok(S, t(1), 2), pop_ok(S, t(1), 2)]));
        assert!(!spec.accepts(&[push_ok(S, t(1), 1), push_ok(S, t(1), 2), pop_ok(S, t(1), 1)]));
    }

    #[test]
    fn pop_empty_fails_cleanly() {
        let spec = StackSpec::total(S);
        assert!(spec.accepts(&[pop_fail(S, t(1))]));
        assert!(!spec.accepts(&[push_ok(S, t(1), 1), pop_fail(S, t(1))]));
    }

    #[test]
    fn failing_variant_admits_spurious_failures() {
        let spec = StackSpec::failing(S);
        assert!(spec.accepts(&[
            push_ok(S, t(1), 1),
            pop_fail(S, t(2)),
            push_fail(S, t(2), 9),
            pop_ok(S, t(1), 1),
        ]));
    }

    #[test]
    fn total_variant_rejects_spurious_push_failure() {
        let spec = StackSpec::total(S);
        assert!(!spec.accepts(&[push_fail(S, t(1), 9)]));
    }

    #[test]
    fn failed_pop_must_report_zero() {
        let spec = StackSpec::failing(S);
        let bad = Operation::new(t(1), S, POP, Value::Unit, Value::Pair(false, 3));
        assert!(!spec.accepts(&[bad]));
    }

    #[test]
    fn wrong_object_or_method_rejected() {
        let spec = StackSpec::total(S);
        assert!(!spec.accepts(&[push_ok(ObjectId(4), t(1), 1)]));
        let bad = Operation::new(t(1), S, crate::vocab::EXCHANGE, Value::Int(1), Value::Bool(true));
        assert!(!spec.accepts(&[bad]));
    }

    #[test]
    fn concurrent_push_pop_linearizable() {
        // push(5) overlaps pop; pop may see 5 or empty.
        let push = push_ok(S, t(1), 5);
        for pop in [pop_ok(S, t(2), 5), pop_fail(S, t(2))] {
            let h = History::from_actions(vec![
                push.invocation(),
                pop.invocation(),
                push.response(),
                pop.response(),
            ]);
            assert!(is_linearizable(&h, &StackSpec::total(S)).unwrap(), "pop {pop} should linearize");
        }
    }

    #[test]
    fn pop_of_never_pushed_value_not_linearizable() {
        let h = History::from_actions(vec![
            pop_ok(S, t(1), 42).invocation(),
            pop_ok(S, t(1), 42).response(),
        ]);
        assert!(!is_linearizable(&h, &StackSpec::total(S)).unwrap());
    }

    #[test]
    fn pending_pop_completed_from_universe() {
        let spec = StackSpec::total(S).with_pop_universe(vec![5]);
        // push(5) completes; pop invoked but never responds. The pop can be
        // completed as (true,5) or dropped — either way linearizable.
        let push = push_ok(S, t(1), 5);
        let h = History::from_actions(vec![
            push.invocation(),
            push.response(),
            pop_ok(S, t(2), 5).invocation(),
        ]);
        assert!(is_linearizable(&h, &spec).unwrap());
        let inv = Invocation::new(t(2), S, POP, Value::Unit);
        assert!(spec.completions_of(&inv).contains(&Value::Pair(true, 5)));
    }

    #[test]
    fn completions_shapes() {
        let total = StackSpec::total(S);
        let failing = StackSpec::failing(S);
        let push_inv = Invocation::new(t(1), S, PUSH, Value::Int(3));
        assert_eq!(total.completions_of(&push_inv), vec![Value::Bool(true)]);
        assert_eq!(
            failing.completions_of(&push_inv),
            vec![Value::Bool(true), Value::Bool(false)]
        );
        let other = Invocation::new(t(1), S, crate::vocab::EXCHANGE, Value::Int(3));
        assert!(total.completions_of(&other).is_empty());
    }

    #[test]
    fn accessors() {
        assert_eq!(StackSpec::total(S).object(), S);
        assert!(StackSpec::failing(S).admits_spurious_failures());
        assert!(!StackSpec::total(S).admits_spurious_failures());
    }
}
