//! # cal-specs — concrete specifications for the paper's objects
//!
//! Ready-made [`cal_core::spec::CaSpec`] / [`cal_core::spec::SeqSpec`]
//! instances and `F_o` view functions for every object in the paper:
//!
//! - [`exchanger::ExchangerSpec`] — the CA specification of §4: swap pairs
//!   and singleton failures;
//! - [`elim_array::ElimArraySpec`] and [`elim_array::FArMap`] — the
//!   elimination array exposing the exchanger surface, with `F_AR` hiding
//!   the encapsulated exchangers (§5);
//! - [`stack::StackSpec`] — sequential stacks, total and with Fig. 2's
//!   contention failures;
//! - [`elim_stack::FEsMap`] and [`elim_stack::modular_stack_check`] — the
//!   elimination stack's `F_ES` and the modular correctness check of §5;
//! - [`sync_queue::SyncQueueSpec`] — the synchronous queue client of the
//!   extended paper;
//! - [`register::RegisterSpec`] / [`register::CounterSpec`] — classical
//!   sequential baselines for checker calibration;
//! - [`kv::KvMapSpec`] — a map of independent per-key registers, the spec
//!   family for imported distributed-system traces (`cal_core::format`);
//! - [`gen`] — random legal traces for tests and benchmarks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dual_stack;
pub mod elim_array;
pub mod elim_stack;
pub mod exchanger;
pub mod gen;
pub mod kv;
pub mod register;
pub mod snapshot;
pub mod stack;
pub mod sync_queue;
pub mod vocab;
