//! Snapshot objects from the paper's related work (§6): the
//! Borowsky–Gafni *immediate atomic snapshot*, Neiger's motivating example
//! for set-linearizability (which CAL subsumes), and the *write-snapshot*
//! task of Castañeda et al., which separates interval-linearizability from
//! CAL.
//!
//! Values are small integers `0..63`; a *view* (set of observed values) is
//! encoded as an `i64` bitmask.

use cal_core::interval::IntervalSpec;
use cal_core::spec::{CaSpec, Invocation};
use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};

/// The method name of snapshot operations.
pub const IM_SNAP: cal_core::Method = cal_core::Method("im_snap");
/// The method name of write-snapshot operations.
pub const WRITE_SNAPSHOT: cal_core::Method = cal_core::Method("write_snapshot");

/// Builds the view bitmask of a set of values.
///
/// # Panics
///
/// Panics if a value is outside `0..63`.
pub fn view(values: &[i64]) -> i64 {
    values.iter().fold(0, |m, &v| {
        assert!((0..63).contains(&v), "snapshot values must be in 0..63");
        m | (1 << v)
    })
}

/// The immediate-snapshot operation `(t, im_snap(v) ▷ view)`.
pub fn im_snap_op(object: ObjectId, t: ThreadId, v: i64, seen: i64) -> Operation {
    Operation::new(t, object, IM_SNAP, Value::Int(v), Value::Int(seen))
}

/// The write-snapshot operation `(t, write_snapshot(v) ▷ view)`.
pub fn write_snapshot_op(object: ObjectId, t: ThreadId, v: i64, seen: i64) -> Operation {
    Operation::new(t, object, WRITE_SNAPSHOT, Value::Int(v), Value::Int(seen))
}

/// The Borowsky–Gafni immediate atomic snapshot, as a CA specification:
/// executions proceed in *blocks* (CA-elements); every operation in a
/// block writes its value and returns the view containing all values of
/// this and all earlier blocks. This is Neiger's canonical
/// set-linearizable object — expressible in CAL, inexpressible
/// sequentially (a lone op in a bigger "simultaneous" group would see
/// values not yet written).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmediateSnapshotSpec {
    object: ObjectId,
    max_block: usize,
}

impl ImmediateSnapshotSpec {
    /// Creates the specification of the immediate snapshot `object`,
    /// admitting blocks of at most `max_block` simultaneous operations.
    pub fn new(object: ObjectId, max_block: usize) -> Self {
        ImmediateSnapshotSpec { object, max_block: max_block.max(1) }
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }
}

impl CaSpec for ImmediateSnapshotSpec {
    /// The bitmask of values written so far.
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn step(&self, state: &i64, element: &CaElement) -> Option<i64> {
        if element.object() != self.object {
            return None;
        }
        let mut mask = *state;
        for op in element.ops() {
            if op.method != IM_SNAP {
                return None;
            }
            let v = op.arg.as_int()?;
            if !(0..63).contains(&v) {
                return None;
            }
            mask |= 1 << v;
        }
        // Immediacy: every member sees exactly the block-closing view.
        for op in element.ops() {
            if op.ret != Value::Int(mask) {
                return None;
            }
        }
        Some(mask)
    }

    fn max_element_size(&self) -> usize {
        self.max_block
    }

    fn completions_of(&self, _inv: &Invocation) -> Vec<Value> {
        Vec::new()
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then_some(*self)
    }
}

/// The write-snapshot task of Castañeda et al., as an interval
/// specification: an operation's value becomes visible when its interval
/// opens, and its returned view is the set of values visible when it
/// closes. Because an operation may need to be concurrent with two
/// operations that are *ordered* between themselves, single-point (CAL)
/// assignments cannot express it — see the separation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSnapshotSpec {
    object: ObjectId,
    max_active: usize,
}

impl WriteSnapshotSpec {
    /// Creates the specification of the write-snapshot `object`, with at
    /// most `max_active` simultaneously-active operations.
    pub fn new(object: ObjectId, max_active: usize) -> Self {
        WriteSnapshotSpec { object, max_active: max_active.max(1) }
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }
}

impl IntervalSpec for WriteSnapshotSpec {
    /// The bitmask of values written so far.
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn step(
        &self,
        state: &i64,
        active: &[Operation],
        opening: &[Operation],
        closing: &[Operation],
    ) -> Option<i64> {
        let mut mask = *state;
        for op in active {
            if op.object != self.object || op.method != WRITE_SNAPSHOT {
                return None;
            }
        }
        for op in opening {
            let v = op.arg.as_int()?;
            if !(0..63).contains(&v) {
                return None;
            }
            mask |= 1 << v;
        }
        for op in closing {
            if op.ret != Value::Int(mask) {
                return None;
            }
        }
        Some(mask)
    }

    fn max_active(&self) -> usize {
        self.max_active
    }

    fn completions_of(&self, _inv: &Invocation) -> Vec<Value> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::check::is_cal;
    use cal_core::gen::render;
    use cal_core::interval::is_interval_linearizable;
    use cal_core::spec::CaSpec;
    use cal_core::{CaTrace, History};

    const O: ObjectId = ObjectId(0);

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn spec() -> ImmediateSnapshotSpec {
        ImmediateSnapshotSpec::new(O, 3)
    }

    #[test]
    fn block_semantics_accepted() {
        // Block {1,2} then block {3}: both members of the first block see
        // {1,2}; the third op sees everything.
        let b1 = CaElement::new(
            O,
            vec![im_snap_op(O, t(1), 1, view(&[1, 2])), im_snap_op(O, t(2), 2, view(&[1, 2]))],
        )
        .unwrap();
        let b2 = CaElement::singleton(im_snap_op(O, t(3), 3, view(&[1, 2, 3])));
        let trace = CaTrace::from_elements(vec![b1, b2]);
        assert!(spec().accepts(&trace));
        let h = render(&trace);
        assert!(is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn asymmetric_views_in_one_block_rejected() {
        // Immediacy: members of one block must see the same view.
        let bad = CaElement::new(
            O,
            vec![im_snap_op(O, t(1), 1, view(&[1])), im_snap_op(O, t(2), 2, view(&[1, 2]))],
        )
        .unwrap();
        assert!(!spec().accepts(&CaTrace::from_elements(vec![bad])));
    }

    #[test]
    fn view_must_include_own_value() {
        let bad = CaElement::singleton(im_snap_op(O, t(1), 1, 0));
        assert!(!spec().accepts(&CaTrace::from_elements(vec![bad])));
    }

    #[test]
    fn stale_view_rejected() {
        let b1 = CaElement::singleton(im_snap_op(O, t(1), 1, view(&[1])));
        // Second op's view omits the first block's value.
        let b2 = CaElement::singleton(im_snap_op(O, t(2), 2, view(&[2])));
        assert!(!spec().accepts(&CaTrace::from_elements(vec![b1, b2])));
    }

    #[test]
    fn immediate_snapshot_history_not_sequentially_explainable() {
        // Two concurrent ops that saw each other: CAL explains them as one
        // block; a sequential (singleton-only) reading cannot.
        let a = im_snap_op(O, t(1), 1, view(&[1, 2]));
        let b = im_snap_op(O, t(2), 2, view(&[1, 2]));
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            a.response(),
            b.response(),
        ]);
        assert!(is_cal(&h, &spec()).unwrap());
        let singleton_only = ImmediateSnapshotSpec::new(O, 1);
        assert!(!is_cal(&h, &singleton_only).unwrap());
    }

    #[test]
    fn write_snapshot_separation() {
        // The §6 separation: interval-linearizable but not CAL.
        let a = write_snapshot_op(O, t(1), 1, view(&[1, 2, 3]));
        let b = write_snapshot_op(O, t(2), 2, view(&[1, 2]));
        let c = write_snapshot_op(O, t(3), 3, view(&[1, 2, 3]));
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            b.response(),
            c.invocation(),
            c.response(),
            a.response(),
        ]);
        assert!(is_interval_linearizable(&h, &WriteSnapshotSpec::new(O, 4)).unwrap());
        // The one-point (CAL) reading of the same object rejects it. The
        // CAL analogue of write-snapshot coincides with the immediate
        // snapshot's element shape:
        #[derive(Debug)]
        struct OnePoint;
        impl CaSpec for OnePoint {
            type State = i64;
            fn initial(&self) -> i64 {
                0
            }
            fn step(&self, state: &i64, e: &CaElement) -> Option<i64> {
                let mut mask = *state;
                for op in e.ops() {
                    mask |= 1 << op.arg.as_int()?;
                }
                for op in e.ops() {
                    if op.ret != Value::Int(mask) {
                        return None;
                    }
                }
                Some(mask)
            }
            fn max_element_size(&self) -> usize {
                4
            }
            fn completions_of(&self, _: &Invocation) -> Vec<Value> {
                Vec::new()
            }
        }
        assert!(!is_cal(&h, &OnePoint).unwrap());
    }

    #[test]
    fn interval_spec_rejects_foreign_ops() {
        let bad = Operation::new(t(1), ObjectId(9), WRITE_SNAPSHOT, Value::Int(1), Value::Int(2));
        let h = History::from_actions(vec![bad.invocation(), bad.response()]);
        assert!(!is_interval_linearizable(&h, &WriteSnapshotSpec::new(O, 2)).unwrap());
    }

    #[test]
    #[should_panic(expected = "0..63")]
    fn view_rejects_out_of_range() {
        view(&[64]);
    }
}
