//! A synchronous queue specification — the extended paper's second client
//! of the exchanger (§2, citing Scherer–Lea–Scott).
//!
//! A synchronous queue transfers an element only when a producer and a
//! consumer rendezvous: `put(v)` blocks until some `take()` receives `v`,
//! and vice versa. Like the exchanger this is a CA-object: a successful
//! transfer is a *pair* of operations taking effect simultaneously, and no
//! useful sequential specification exists. The CA-trace set consists of
//! elements that are either
//!
//! - `Q.{(t, put(v) ▷ true), (t', take() ▷ (true, v))}` with `t ≠ t'`, or
//! - `Q.{(t, put(v) ▷ false)}` / `Q.{(t, take() ▷ (false, 0))}` — a timed-out
//!   rendezvous attempt.

use cal_core::compose::TraceMap;
use cal_core::spec::{CaSpec, Invocation};
use cal_core::{CaElement, CaTrace, ObjectId, Operation, ThreadId, Value};

use crate::vocab::{PUT, TAKE, TAKE_SENTINEL};

/// The concurrency-aware synchronous queue specification.
///
/// # Examples
///
/// ```
/// use cal_core::spec::CaSpec;
/// use cal_core::{CaTrace, ObjectId, ThreadId};
/// use cal_specs::sync_queue::{transfer_element, SyncQueueSpec};
/// let q = ObjectId(0);
/// let spec = SyncQueueSpec::new(q);
/// let t = CaTrace::from_elements(vec![transfer_element(q, ThreadId(1), 5, ThreadId(2))]);
/// assert!(spec.accepts(&t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncQueueSpec {
    object: ObjectId,
}

impl SyncQueueSpec {
    /// Creates the specification of synchronous queue `object`.
    pub fn new(object: ObjectId) -> Self {
        SyncQueueSpec { object }
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Returns `true` if `element` is a legal synchronous-queue element: a
    /// matched transfer pair or a singleton timeout.
    pub fn is_legal_element(&self, element: &CaElement) -> bool {
        if element.object() != self.object {
            return false;
        }
        match element.ops() {
            [a] => match a.method {
                PUT => a.ret == Value::Bool(false),
                TAKE => a.ret == Value::Pair(false, 0),
                _ => false,
            },
            [a, b] => {
                let (put, take) = match (a.method, b.method) {
                    (PUT, TAKE) => (a, b),
                    (TAKE, PUT) => (b, a),
                    _ => return false,
                };
                put.thread != take.thread
                    && put.ret == Value::Bool(true)
                    && matches!((take.ret.as_pair(), put.arg.as_int()),
                                (Some((true, got)), Some(v)) if got == v)
            }
            _ => false,
        }
    }
}

impl CaSpec for SyncQueueSpec {
    type State = ();

    fn initial(&self) -> Self::State {}

    fn step(&self, _state: &Self::State, element: &CaElement) -> Option<Self::State> {
        self.is_legal_element(element).then_some(())
    }

    fn max_element_size(&self) -> usize {
        2
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        match inv.method {
            PUT => vec![Value::Bool(false)],
            TAKE => vec![Value::Pair(false, 0)],
            _ => Vec::new(),
        }
    }

    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        let mut out = self.completions_of(inv);
        match inv.method {
            PUT if peers.iter().any(|p| p.method == TAKE) => out.push(Value::Bool(true)),
            TAKE => out.extend(
                peers
                    .iter()
                    .filter(|p| p.method == PUT)
                    .filter_map(|p| Some(Value::Pair(true, p.arg.as_int()?))),
            ),
            _ => {}
        }
        out
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then_some(*self)
    }
}

/// Builds the transfer element `Q.{(t, put(v) ▷ true), (t', take() ▷ (true, v))}`.
///
/// # Panics
///
/// Panics if `producer == consumer`.
pub fn transfer_element(object: ObjectId, producer: ThreadId, v: i64, consumer: ThreadId) -> CaElement {
    CaElement::pair(
        Operation::new(producer, object, PUT, Value::Int(v), Value::Bool(true)),
        Operation::new(consumer, object, TAKE, Value::Unit, Value::Pair(true, v)),
    )
    .expect("distinct threads rendezvousing on one object")
}

/// Builds the timeout element `Q.{(t, put(v) ▷ false)}`.
pub fn put_timeout_element(object: ObjectId, t: ThreadId, v: i64) -> CaElement {
    CaElement::singleton(Operation::new(t, object, PUT, Value::Int(v), Value::Bool(false)))
}

/// Builds the timeout element `Q.{(t, take() ▷ (false, 0))}`.
pub fn take_timeout_element(object: ObjectId, t: ThreadId) -> CaElement {
    CaElement::singleton(Operation::new(t, object, TAKE, Value::Unit, Value::Pair(false, 0)))
}

/// The view function `F_Q` of an exchanger-based synchronous queue `Q`:
/// a successful exchange in which exactly one side offered the
/// [`TAKE_SENTINEL`] becomes a transfer pair on `Q` — the producer's `put`
/// and the consumer's `take` stay *simultaneous* (one CA-element, unlike
/// `F_ES` which sequences push before pop). All other exchanger elements
/// are hidden; the queue logs its own timeout singletons directly on `Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FQMap {
    queue: ObjectId,
    exchanger: ObjectId,
}

impl FQMap {
    /// Creates `F_Q` for `queue` encapsulating `exchanger`.
    pub fn new(queue: ObjectId, exchanger: ObjectId) -> Self {
        FQMap { queue, exchanger }
    }

    /// The queue object.
    pub fn queue(&self) -> ObjectId {
        self.queue
    }

    /// The encapsulated exchanger object.
    pub fn exchanger(&self) -> ObjectId {
        self.exchanger
    }
}

impl TraceMap for FQMap {
    fn map_element(&self, element: &CaElement) -> Option<CaTrace> {
        if element.object() != self.exchanger {
            return None;
        }
        let [a, b] = element.ops() else { return Some(CaTrace::new()) };
        let (Some((true, _)), Some((true, _))) = (a.ret.as_pair(), b.ret.as_pair()) else {
            return Some(CaTrace::new());
        };
        let (producer, consumer) = match (a.arg.as_int(), b.arg.as_int()) {
            (Some(va), Some(vb)) if va != TAKE_SENTINEL && vb == TAKE_SENTINEL => (a, b),
            (Some(va), Some(vb)) if vb != TAKE_SENTINEL && va == TAKE_SENTINEL => (b, a),
            _ => return Some(CaTrace::new()),
        };
        let v = producer.arg.as_int().expect("checked above");
        Some(CaTrace::from_elements(vec![transfer_element(
            self.queue,
            producer.thread,
            v,
            consumer.thread,
        )]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::check::is_cal;
    use cal_core::{Action, CaTrace, History};

    const Q: ObjectId = ObjectId(0);

    fn spec() -> SyncQueueSpec {
        SyncQueueSpec::new(Q)
    }

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn transfer_and_timeouts_are_legal() {
        let s = spec();
        assert!(s.is_legal_element(&transfer_element(Q, t(1), 5, t(2))));
        assert!(s.is_legal_element(&put_timeout_element(Q, t(1), 5)));
        assert!(s.is_legal_element(&take_timeout_element(Q, t(2))));
    }

    #[test]
    fn lone_successful_put_is_illegal() {
        let bad = CaElement::singleton(Operation::new(
            t(1),
            Q,
            PUT,
            Value::Int(5),
            Value::Bool(true),
        ));
        assert!(!spec().is_legal_element(&bad));
    }

    #[test]
    fn transfer_value_must_match() {
        let bad = CaElement::pair(
            Operation::new(t(1), Q, PUT, Value::Int(5), Value::Bool(true)),
            Operation::new(t(2), Q, TAKE, Value::Unit, Value::Pair(true, 6)),
        )
        .unwrap();
        assert!(!spec().is_legal_element(&bad));
    }

    #[test]
    fn two_puts_cannot_pair() {
        let bad = CaElement::pair(
            Operation::new(t(1), Q, PUT, Value::Int(5), Value::Bool(true)),
            Operation::new(t(2), Q, PUT, Value::Int(6), Value::Bool(true)),
        )
        .unwrap();
        assert!(!spec().is_legal_element(&bad));
    }

    #[test]
    fn concurrent_transfer_history_is_cal() {
        let h = History::from_actions(vec![
            Action::invoke(t(1), Q, PUT, Value::Int(5)),
            Action::invoke(t(2), Q, TAKE, Value::Unit),
            Action::response(t(1), Q, PUT, Value::Bool(true)),
            Action::response(t(2), Q, TAKE, Value::Pair(true, 5)),
        ]);
        assert!(is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn sequential_transfer_history_is_not_cal() {
        let h = History::from_actions(vec![
            Action::invoke(t(1), Q, PUT, Value::Int(5)),
            Action::response(t(1), Q, PUT, Value::Bool(true)),
            Action::invoke(t(2), Q, TAKE, Value::Unit),
            Action::response(t(2), Q, TAKE, Value::Pair(true, 5)),
        ]);
        assert!(!is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn pending_take_completed_against_pending_put() {
        let h = History::from_actions(vec![
            Action::invoke(t(1), Q, PUT, Value::Int(5)),
            Action::invoke(t(2), Q, TAKE, Value::Unit),
            Action::response(t(1), Q, PUT, Value::Bool(true)),
        ]);
        assert!(is_cal(&h, &spec()).unwrap());
    }

    #[test]
    fn fq_maps_mixed_rendezvous_to_transfer() {
        use crate::exchanger::swap_element;
        let e = ObjectId(9);
        let f = FQMap::new(Q, e);
        // Producer offers 5, consumer offers the take sentinel.
        let rendezvous = swap_element(e, t(1), 5, t(2), TAKE_SENTINEL);
        let mapped = f.apply(&CaTrace::from_elements(vec![rendezvous]));
        assert_eq!(mapped.len(), 1);
        assert!(spec().is_legal_element(&mapped.elements()[0]));
        assert_eq!(mapped.elements()[0], transfer_element(Q, t(1), 5, t(2)));
    }

    #[test]
    fn fq_hides_same_role_and_failed_exchanges() {
        use crate::exchanger::{fail_element, swap_element};
        use cal_core::compose::TraceMap;
        let e = ObjectId(9);
        let f = FQMap::new(Q, e);
        let tr = CaTrace::from_elements(vec![
            swap_element(e, t(1), 5, t(2), 6),                            // put-put
            swap_element(e, t(1), TAKE_SENTINEL, t(2), TAKE_SENTINEL),    // take-take
            fail_element(e, t(3), 7),                                     // failed exchange
            take_timeout_element(Q, t(3)),                                // queue's own element
        ]);
        let mapped = f.apply(&tr);
        assert_eq!(mapped.len(), 1);
        assert_eq!(mapped.elements()[0], take_timeout_element(Q, t(3)));
        assert_eq!(f.queue(), Q);
        assert_eq!(f.exchanger(), e);
    }

    #[test]
    fn trace_acceptance() {
        let tr = CaTrace::from_elements(vec![
            transfer_element(Q, t(1), 5, t(2)),
            take_timeout_element(Q, t(3)),
            transfer_element(Q, t(2), 6, t(1)),
        ]);
        assert!(spec().accepts(&tr));
    }
}
