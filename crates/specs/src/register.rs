//! Sequential register and counter specifications, used to calibrate the
//! checkers against classical (singleton-element) objects.

use cal_core::spec::{Invocation, SeqSpec};
use cal_core::{ObjectId, Operation, ThreadId, Value};

use crate::vocab::{INC, READ, WRITE};

/// A sequential integer register: `read` returns the last written value,
/// initially 0.
///
/// # Examples
///
/// ```
/// use cal_core::spec::SeqSpec;
/// use cal_core::{ObjectId, ThreadId};
/// use cal_specs::register::{read_op, write_op, RegisterSpec};
/// let r = ObjectId(0);
/// let spec = RegisterSpec::new(r);
/// assert!(spec.accepts(&[write_op(r, ThreadId(1), 5), read_op(r, ThreadId(2), 5)]));
/// assert!(!spec.accepts(&[write_op(r, ThreadId(1), 5), read_op(r, ThreadId(2), 0)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterSpec {
    object: ObjectId,
    /// Values proposed when completing a pending `read`.
    read_universe: Vec<i64>,
}

impl RegisterSpec {
    /// Creates the specification of register `object`.
    pub fn new(object: ObjectId) -> Self {
        RegisterSpec { object, read_universe: vec![0] }
    }

    /// Sets the value universe used to complete pending reads.
    pub fn with_read_universe(mut self, universe: Vec<i64>) -> Self {
        self.read_universe = universe;
        self
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }
}

impl SeqSpec for RegisterSpec {
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
        if op.object != self.object {
            return None;
        }
        match op.method {
            WRITE => {
                if op.ret != Value::Unit {
                    return None;
                }
                op.arg.as_int()
            }
            READ => (op.ret == Value::Int(*state)).then_some(*state),
            _ => None,
        }
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        match inv.method {
            WRITE => vec![Value::Unit],
            READ => self.read_universe.iter().map(|&v| Value::Int(v)).collect(),
            _ => Vec::new(),
        }
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then(|| self.clone())
    }
}

/// The operation `(t, write(v) ▷ ())`.
pub fn write_op(object: ObjectId, t: ThreadId, v: i64) -> Operation {
    Operation::new(t, object, WRITE, Value::Int(v), Value::Unit)
}

/// The operation `(t, read() ▷ v)`.
pub fn read_op(object: ObjectId, t: ThreadId, v: i64) -> Operation {
    Operation::new(t, object, READ, Value::Unit, Value::Int(v))
}

/// A sequential counter: `inc() ▷ n` returns the pre-increment count.
///
/// # Examples
///
/// ```
/// use cal_core::spec::SeqSpec;
/// use cal_core::{ObjectId, ThreadId};
/// use cal_specs::register::{inc_op, CounterSpec};
/// let c = ObjectId(0);
/// let spec = CounterSpec::new(c);
/// assert!(spec.accepts(&[inc_op(c, ThreadId(1), 0), inc_op(c, ThreadId(2), 1)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSpec {
    object: ObjectId,
    /// Largest count proposed when completing a pending `inc`.
    max_completion: i64,
}

impl CounterSpec {
    /// Creates the specification of counter `object`.
    pub fn new(object: ObjectId) -> Self {
        CounterSpec { object, max_completion: 16 }
    }

    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }
}

impl SeqSpec for CounterSpec {
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
        if op.object != self.object || op.method != INC {
            return None;
        }
        (op.ret == Value::Int(*state)).then_some(state + 1)
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        if inv.method == INC {
            (0..=self.max_completion).map(Value::Int).collect()
        } else {
            Vec::new()
        }
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then(|| self.clone())
    }
}

/// The operation `(t, inc() ▷ n)`.
pub fn inc_op(object: ObjectId, t: ThreadId, n: i64) -> Operation {
    Operation::new(t, object, INC, Value::Unit, Value::Int(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::seqlin::is_linearizable;
    use cal_core::History;

    const R: ObjectId = ObjectId(0);

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn register_reads_last_write() {
        let spec = RegisterSpec::new(R);
        assert!(spec.accepts(&[read_op(R, t(1), 0), write_op(R, t(1), 7), read_op(R, t(2), 7)]));
        assert!(!spec.accepts(&[write_op(R, t(1), 7), read_op(R, t(2), 8)]));
    }

    #[test]
    fn register_rejects_wrong_object() {
        let spec = RegisterSpec::new(R);
        assert!(!spec.accepts(&[write_op(ObjectId(3), t(1), 7)]));
    }

    #[test]
    fn counter_counts() {
        let spec = CounterSpec::new(R);
        assert!(spec.accepts(&[inc_op(R, t(1), 0), inc_op(R, t(2), 1), inc_op(R, t(1), 2)]));
        assert!(!spec.accepts(&[inc_op(R, t(1), 1)]));
    }

    #[test]
    fn concurrent_incs_linearize_in_either_order() {
        let a = inc_op(R, t(1), 0);
        let b = inc_op(R, t(2), 1);
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            b.response(),
            a.response(),
        ]);
        assert!(is_linearizable(&h, &CounterSpec::new(R)).unwrap());
    }

    #[test]
    fn duplicate_count_not_linearizable() {
        let a = inc_op(R, t(1), 0);
        let b = inc_op(R, t(2), 0);
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            a.response(),
            b.response(),
        ]);
        assert!(!is_linearizable(&h, &CounterSpec::new(R)).unwrap());
    }

    #[test]
    fn completions() {
        let reg = RegisterSpec::new(R).with_read_universe(vec![0, 5]);
        let read_inv = Invocation::new(t(1), R, READ, Value::Unit);
        assert_eq!(reg.completions_of(&read_inv).len(), 2);
        let write_inv = Invocation::new(t(1), R, WRITE, Value::Int(3));
        assert_eq!(reg.completions_of(&write_inv), vec![Value::Unit]);
        let ctr = CounterSpec::new(R);
        let inc_inv = Invocation::new(t(1), R, INC, Value::Unit);
        assert_eq!(ctr.completions_of(&inc_inv).len(), 17);
    }
}
