//! Shared vocabulary: method names and sentinel values used by the paper's
//! objects.

use cal_core::Method;

/// The `exchange` method of exchangers and elimination arrays.
pub const EXCHANGE: Method = Method("exchange");
/// The `push` method of stacks.
pub const PUSH: Method = Method("push");
/// The `pop` method of stacks.
pub const POP: Method = Method("pop");
/// The `put` method of synchronous queues.
pub const PUT: Method = Method("put");
/// The `take` method of synchronous queues.
pub const TAKE: Method = Method("take");
/// The `read` method of registers.
pub const READ: Method = Method("read");
/// The `write` method of registers.
pub const WRITE: Method = Method("write");
/// The `inc` method of counters.
pub const INC: Method = Method("inc");

/// `POP_SENTINAL` of Fig. 2 (spelled as in the paper's code): the value a
/// popping thread offers to the elimination array, standing for `INFINITY`.
pub const POP_SENTINEL: i64 = i64::MAX;

/// The value a taking thread offers to a synchronous queue's internal
/// exchanger to announce itself as a consumer.
pub const TAKE_SENTINEL: i64 = i64::MAX - 1;

/// The value returned by a dual-stack `pop` whose reservation timed out
/// and was cancelled (mirrors the object's internal `CANCELLED` marker).
pub const CANCEL_SENTINEL: i64 = i64::MIN + 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_are_distinct() {
        let all = [EXCHANGE, PUSH, POP, PUT, TAKE, READ, WRITE, INC];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn sentinel_is_extreme() {
        assert_eq!(POP_SENTINEL, i64::MAX);
    }
}
