//! A key-value register map: the spec family for imported distributed-
//! system traces (etcd-style Jepsen registers, flat Put/Get logs).
//!
//! Every object id is one key holding an independent integer register,
//! initially 0. `write`/`put` stores, `read`/`get` loads. Because the keys
//! are independent, [`SeqSpec::restrict`] narrows the spec to a single
//! key, which is exactly what the per-object parallel decomposition needs.

use cal_core::spec::{Invocation, SeqSpec};
use cal_core::{Method, ObjectId, Operation, ThreadId, Value};

use crate::vocab::{PUT, READ, WRITE};

/// `get` is the Put/Get-log spelling of `read`.
pub const GET: Method = Method("get");

/// A map of independent integer registers, one per object id, each
/// initially 0.
///
/// # Examples
///
/// ```
/// use cal_core::spec::SeqSpec;
/// use cal_core::{ObjectId, ThreadId};
/// use cal_specs::kv::{get_op, put_op, KvMapSpec};
/// let (x, y, t) = (ObjectId(0), ObjectId(1), ThreadId(0));
/// let spec = KvMapSpec::new();
/// assert!(spec.accepts(&[put_op(x, t, 5), get_op(y, t, 0), get_op(x, t, 5)]));
/// assert!(!spec.accepts(&[put_op(x, t, 5), get_op(y, t, 5)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvMapSpec {
    /// When set, the spec is the restriction to this single key.
    only: Option<ObjectId>,
    /// Values proposed when completing a pending read.
    read_universe: Vec<i64>,
}

impl Default for KvMapSpec {
    fn default() -> Self {
        KvMapSpec::new()
    }
}

impl KvMapSpec {
    /// Creates the spec of the whole map (every key admissible).
    pub fn new() -> Self {
        KvMapSpec { only: None, read_universe: vec![0] }
    }

    /// Sets the value universe used to complete pending reads.
    pub fn with_read_universe(mut self, universe: Vec<i64>) -> Self {
        self.read_universe = universe;
        self
    }

    fn admits(&self, object: ObjectId) -> bool {
        self.only.is_none() || self.only == Some(object)
    }
}

/// Map state: the keys written so far with their values, sorted by key so
/// equal states hash equally. Absent keys read as 0.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct KvState(Vec<(ObjectId, i64)>);

impl KvState {
    fn get(&self, key: ObjectId) -> i64 {
        match self.0.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => self.0[i].1,
            Err(_) => 0,
        }
    }

    fn set(&self, key: ObjectId, value: i64) -> KvState {
        let mut entries = self.0.clone();
        match entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => entries[i].1 = value,
            Err(i) => entries.insert(i, (key, value)),
        }
        KvState(entries)
    }
}

impl SeqSpec for KvMapSpec {
    type State = KvState;

    fn initial(&self) -> KvState {
        KvState::default()
    }

    fn apply(&self, state: &KvState, op: &Operation) -> Option<KvState> {
        if !self.admits(op.object) {
            return None;
        }
        match op.method {
            WRITE | PUT => {
                if op.ret != Value::Unit {
                    return None;
                }
                Some(state.set(op.object, op.arg.as_int()?))
            }
            READ | GET => {
                (op.ret == Value::Int(state.get(op.object))).then(|| state.clone())
            }
            _ => None,
        }
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        match inv.method {
            WRITE | PUT => vec![Value::Unit],
            READ | GET => self.read_universe.iter().map(|&v| Value::Int(v)).collect(),
            _ => Vec::new(),
        }
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        self.admits(object).then(|| KvMapSpec { only: Some(object), ..self.clone() })
    }
}

/// The operation `(t, put(v) ▷ ())` on `key`.
pub fn put_op(key: ObjectId, t: ThreadId, v: i64) -> Operation {
    Operation::new(t, key, WRITE, Value::Int(v), Value::Unit)
}

/// The operation `(t, get() ▷ v)` on `key`.
pub fn get_op(key: ObjectId, t: ThreadId, v: i64) -> Operation {
    Operation::new(t, key, READ, Value::Unit, Value::Int(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::check::check_cal;
    use cal_core::seqlin::is_linearizable;
    use cal_core::spec::SeqAsCa;
    use cal_core::History;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn keys_are_independent() {
        let spec = KvMapSpec::new();
        assert!(spec.accepts(&[
            put_op(X, t(0), 1),
            put_op(Y, t(0), 2),
            get_op(X, t(1), 1),
            get_op(Y, t(1), 2),
        ]));
        assert!(!spec.accepts(&[put_op(X, t(0), 1), get_op(Y, t(1), 1)]));
    }

    #[test]
    fn unwritten_keys_read_zero() {
        let spec = KvMapSpec::new();
        assert!(spec.accepts(&[get_op(ObjectId(9), t(0), 0)]));
        assert!(!spec.accepts(&[get_op(ObjectId(9), t(0), 1)]));
    }

    #[test]
    fn overwrite_in_place() {
        let spec = KvMapSpec::new();
        assert!(spec.accepts(&[put_op(X, t(0), 1), put_op(X, t(0), 2), get_op(X, t(1), 2)]));
        assert!(!spec.accepts(&[put_op(X, t(0), 1), put_op(X, t(0), 2), get_op(X, t(1), 1)]));
    }

    #[test]
    fn put_and_get_spellings_accepted() {
        let spec = KvMapSpec::new();
        let stale = Operation::new(t(0), X, PUT, Value::Int(3), Value::Unit);
        let load = Operation::new(t(1), X, GET, Value::Unit, Value::Int(3));
        assert!(spec.accepts(&[stale, load]));
    }

    #[test]
    fn restrict_narrows_to_one_key() {
        let spec = KvMapSpec::new();
        let only_x = spec.restrict(X).unwrap();
        assert!(only_x.accepts(&[put_op(X, t(0), 1)]));
        assert!(!only_x.accepts(&[put_op(Y, t(0), 1)]));
        // restricting a restriction to another key is empty:
        assert!(only_x.restrict(Y).is_none());
        assert!(only_x.restrict(X).is_some());
    }

    #[test]
    fn concurrent_writes_linearize_in_either_order() {
        let a = put_op(X, t(0), 1);
        let b = put_op(X, t(1), 2);
        let r = get_op(X, t(2), 1);
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            a.response(),
            b.response(),
            r.invocation(),
            r.response(),
        ]);
        // read may see 1 only if b linearized before a — still admissible:
        assert!(is_linearizable(&h, &KvMapSpec::new()).unwrap());
        assert!(check_cal(&h, &SeqAsCa::new(KvMapSpec::new())).unwrap().verdict.is_cal());
    }

    #[test]
    fn stale_read_rejected_everywhere() {
        let w1 = put_op(X, t(0), 1);
        let w2 = put_op(X, t(0), 2);
        let r = get_op(X, t(1), 1);
        let h = History::from_actions(vec![
            w1.invocation(),
            w1.response(),
            w2.invocation(),
            w2.response(),
            r.invocation(),
            r.response(),
        ]);
        assert!(!is_linearizable(&h, &KvMapSpec::new()).unwrap());
        assert!(!check_cal(&h, &SeqAsCa::new(KvMapSpec::new())).unwrap().verdict.is_cal());
    }

    #[test]
    fn pending_read_completes_from_universe() {
        let w = put_op(X, t(0), 5);
        let h = History::from_actions(vec![
            w.invocation(),
            w.response(),
            Operation::new(t(1), X, READ, Value::Unit, Value::Unit).invocation(),
        ]);
        // default universe only proposes 0, but dropping the pending read
        // is always admissible:
        assert!(is_linearizable(&h, &KvMapSpec::new()).unwrap());
        let with5 = KvMapSpec::new().with_read_universe(vec![0, 5]);
        assert!(is_linearizable(&h, &with5).unwrap());
    }
}
