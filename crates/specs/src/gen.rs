//! Random generation of specification-level CA-traces, used by the checker
//! validation tests and the scaling benchmarks.

use cal_core::{CaElement, CaTrace, ObjectId, ThreadId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::elim_stack::FEsMap;
use crate::exchanger::{fail_element, swap_element};
use crate::stack::{pop_fail, pop_ok, push_fail, push_ok};
use crate::sync_queue::{put_timeout_element, take_timeout_element, transfer_element};
use crate::vocab::POP_SENTINEL;

/// Generates a random legal exchanger trace: `elements` CA-elements, each a
/// swap between two distinct random threads or a singleton failure.
///
/// # Panics
///
/// Panics if `threads < 2` (a swap needs two distinct threads).
pub fn random_exchanger_trace<R: Rng>(
    rng: &mut R,
    object: ObjectId,
    threads: u32,
    elements: usize,
) -> CaTrace {
    assert!(threads >= 2, "need at least two threads to generate swaps");
    let mut trace = CaTrace::new();
    let mut fresh = 0i64;
    for _ in 0..elements {
        if rng.gen_bool(0.6) {
            let a = rng.gen_range(0..threads);
            let b = loop {
                let b = rng.gen_range(0..threads);
                if b != a {
                    break b;
                }
            };
            trace.push(swap_element(object, ThreadId(a), fresh, ThreadId(b), fresh + 1));
            fresh += 2;
        } else {
            let t = rng.gen_range(0..threads);
            trace.push(fail_element(object, ThreadId(t), fresh));
            fresh += 1;
        }
    }
    trace
}

/// Generates a random legal synchronous-queue trace.
///
/// # Panics
///
/// Panics if `threads < 2`.
pub fn random_sync_queue_trace<R: Rng>(
    rng: &mut R,
    object: ObjectId,
    threads: u32,
    elements: usize,
) -> CaTrace {
    assert!(threads >= 2, "need at least two threads to generate transfers");
    let mut trace = CaTrace::new();
    let mut fresh = 0i64;
    for _ in 0..elements {
        match rng.gen_range(0..4u8) {
            0..=1 => {
                let p = rng.gen_range(0..threads);
                let c = loop {
                    let c = rng.gen_range(0..threads);
                    if c != p {
                        break c;
                    }
                };
                trace.push(transfer_element(object, ThreadId(p), fresh, ThreadId(c)));
                fresh += 1;
            }
            2 => {
                trace.push(put_timeout_element(object, ThreadId(rng.gen_range(0..threads)), fresh));
                fresh += 1;
            }
            _ => trace.push(take_timeout_element(object, ThreadId(rng.gen_range(0..threads)))),
        }
    }
    trace
}

/// Generates a random legal *subobject* trace of the elimination stack:
/// CA-elements of the central stack `S` (successful and failing pushes and
/// pops) and of the elimination array `AR` (eliminations, failed exchanges
/// and non-eliminating same-operation exchanges), such that the `F_ES`
/// image is a well-defined sequential stack history.
///
/// # Panics
///
/// Panics if `threads < 2`.
pub fn random_elim_subobject_trace<R: Rng>(
    rng: &mut R,
    f_es: &FEsMap,
    threads: u32,
    elements: usize,
) -> CaTrace {
    assert!(threads >= 2, "need at least two threads for eliminations");
    let s = f_es.stack();
    let ar = f_es.array();
    let mut trace = CaTrace::new();
    let mut stack: Vec<i64> = Vec::new();
    let mut fresh = 0i64;
    for _ in 0..elements {
        let t = ThreadId(rng.gen_range(0..threads));
        let choices: &[u8] = if stack.is_empty() {
            &[0, 2, 3, 4, 5, 6]
        } else {
            &[0, 1, 2, 3, 4, 5, 6]
        };
        match *choices.choose(rng).expect("non-empty") {
            0 => {
                stack.push(fresh);
                trace.push(CaElement::singleton(push_ok(s, t, fresh)));
                fresh += 1;
            }
            1 => {
                let v = stack.pop().expect("guarded by choice set");
                trace.push(CaElement::singleton(pop_ok(s, t, v)));
            }
            2 => trace.push(CaElement::singleton(push_fail(s, t, fresh))),
            3 => trace.push(CaElement::singleton(pop_fail(s, t))),
            4 => {
                // Elimination: net no-op on the abstract stack.
                let t2 = ThreadId(loop {
                    let u = rng.gen_range(0..threads);
                    if ThreadId(u) != t {
                        break u;
                    }
                });
                trace.push(swap_element(ar, t, fresh, t2, POP_SENTINEL));
                fresh += 1;
            }
            5 => {
                trace.push(fail_element(ar, t, fresh));
                fresh += 1;
            }
            _ => {
                // Same-operation exchange (two pushers): hidden by F_ES.
                let t2 = ThreadId(loop {
                    let u = rng.gen_range(0..threads);
                    if ThreadId(u) != t {
                        break u;
                    }
                });
                trace.push(swap_element(ar, t, fresh, t2, fresh + 1));
                fresh += 2;
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim_stack::modular_stack_check;
    use crate::exchanger::ExchangerSpec;
    use crate::sync_queue::SyncQueueSpec;
    use cal_core::spec::CaSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exchanger_traces_are_legal() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = ExchangerSpec::new(ObjectId(0));
        for n in [0, 1, 5, 40] {
            let t = random_exchanger_trace(&mut rng, ObjectId(0), 4, n);
            assert_eq!(t.len(), n);
            assert!(spec.accepts(&t));
        }
    }

    #[test]
    fn sync_queue_traces_are_legal() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SyncQueueSpec::new(ObjectId(0));
        for n in [0, 3, 25] {
            let t = random_sync_queue_trace(&mut rng, ObjectId(0), 3, n);
            assert!(spec.accepts(&t));
        }
    }

    #[test]
    fn elim_subobject_traces_pass_modular_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = FEsMap::new(ObjectId(0), ObjectId(1), ObjectId(2));
        for n in [0, 5, 60] {
            let t = random_elim_subobject_trace(&mut rng, &f, 4, n);
            assert!(modular_stack_check(&f, &t), "generated trace failed modular check");
        }
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn exchanger_generator_needs_two_threads() {
        let mut rng = StdRng::seed_from_u64(4);
        random_exchanger_trace(&mut rng, ObjectId(0), 1, 3);
    }
}
