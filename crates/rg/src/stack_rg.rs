//! Machine-checked obligations for the central stack of Fig. 2, in the
//! style of the exchanger proof: every transition must be one of the
//! stack's atomic actions, the heap invariant must hold throughout, and
//! the logged trace must stay a well-defined stack history (`WFS`, §4).

use cal_core::spec::SeqSpec;
use cal_core::{CaElement, ObjectId, ThreadId, Value};
use cal_sim::models::stack::{StackLocal, StackShared};
use cal_sim::sched::{Execution, Transition, TransitionKind};
use cal_specs::stack::StackSpec;
use cal_specs::vocab::{POP, PUSH};

use crate::exchanger_rg::RgViolation;

/// The full obligation check for one explored execution of the failing
/// stack model: action conformance per transition, the acyclic-reachability
/// invariant, and `WFS` of the logged trace.
///
/// # Errors
///
/// Returns the first violated obligation.
pub fn check_stack_rg(
    object: ObjectId,
    execution: &Execution<StackShared, StackLocal>,
) -> Result<(), RgViolation> {
    for (i, tr) in execution.transitions.iter().enumerate() {
        check_action(object, i, tr, execution)?;
        check_invariant(i, tr)?;
    }
    // WFS(𝒯_S): replaying the successful operations in trace order is
    // possible and reproduces the reported results (§4).
    let spec = StackSpec::failing(object);
    let mut state = spec.initial();
    for (k, element) in execution.trace.elements().iter().enumerate() {
        let [op] = element.ops() else {
            return Err(RgViolation {
                transition: k,
                thread: ThreadId(0),
                reason: format!("stack elements are singletons, found {element}"),
            });
        };
        match spec.apply(&state, op) {
            Some(next) => state = next,
            None => {
                return Err(RgViolation {
                    transition: k,
                    thread: op.thread,
                    reason: format!("trace violates WFS at element {element}"),
                })
            }
        }
    }
    Ok(())
}

fn violation(
    transition: usize,
    thread: ThreadId,
    reason: impl Into<String>,
) -> Result<(), RgViolation> {
    Err(RgViolation { transition, thread, reason: reason.into() })
}

fn check_action(
    object: ObjectId,
    i: usize,
    tr: &Transition<StackShared, StackLocal>,
    execution: &Execution<StackShared, StackLocal>,
) -> Result<(), RgViolation> {
    let t = tr.thread;
    let pre = &tr.pre;
    let post = &tr.post;
    let delta: &[CaElement] = &execution.trace.elements()[tr.trace_before..tr.trace_after];
    let singleton = |delta: &[CaElement]| -> Option<cal_core::Operation> {
        match delta {
            [e] => match e.ops() {
                [op] if e.object() == object && op.thread == t => Some(*op),
                _ => None,
            },
            _ => None,
        }
    };
    if tr.kind == TransitionKind::Invoke {
        if pre != post || !delta.is_empty() {
            return violation(i, t, "invocation must not touch shared state");
        }
        return Ok(());
    }
    match tr.label {
        None => {
            // Reads, or a private cell allocation (push's line 12).
            if post.top != pre.top {
                return violation(i, t, "unlabelled step changed top");
            }
            if !delta.is_empty() {
                return violation(i, t, "unlabelled step extended the trace");
            }
            if post.cells.len() > pre.cells.len() + 1
                || post.cells[..pre.cells.len()] != pre.cells[..]
            {
                return violation(i, t, "unlabelled step mutated published cells");
            }
            Ok(())
        }
        Some("PUSH") => {
            let Some(op) = singleton(delta) else {
                return violation(i, t, "PUSH must log one own element");
            };
            if op.method != PUSH || op.ret != Value::Bool(true) {
                return violation(i, t, format!("PUSH logged wrong element {op}"));
            }
            let Some(n) = post.top else {
                return violation(i, t, "PUSH must set top");
            };
            if post.cells != pre.cells {
                return violation(i, t, "PUSH may only swing top");
            }
            let cell = post.cells[n];
            if cell.next != pre.top {
                return violation(i, t, "pushed cell must point at the old top");
            }
            if op.arg != Value::Int(cell.data) {
                return violation(i, t, "PUSH element must carry the pushed value");
            }
            Ok(())
        }
        Some("PUSH-FAIL") => {
            if pre != post {
                return violation(i, t, "PUSH-FAIL must not touch shared state");
            }
            let Some(op) = singleton(delta) else {
                return violation(i, t, "PUSH-FAIL must log one own element");
            };
            (op.method == PUSH && op.ret == Value::Bool(false))
                .then_some(())
                .ok_or(())
                .or_else(|_| violation(i, t, format!("PUSH-FAIL logged wrong element {op}")))
        }
        Some("POP") => {
            let Some(op) = singleton(delta) else {
                return violation(i, t, "POP must log one own element");
            };
            let Some(h) = pre.top else {
                return violation(i, t, "POP requires a non-empty stack");
            };
            if post.cells != pre.cells {
                return violation(i, t, "POP may only swing top");
            }
            if post.top != pre.cells[h].next {
                return violation(i, t, "POP must swing top to the next cell");
            }
            if op.method != POP || op.ret != Value::Pair(true, pre.cells[h].data) {
                return violation(i, t, format!("POP element must report the popped value, got {op}"));
            }
            Ok(())
        }
        Some("POP-FAIL") | Some("POP-EMPTY") => {
            if pre != post {
                return violation(i, t, "failing POP must not touch shared state");
            }
            if tr.label == Some("POP-EMPTY") && pre.top.is_some() {
                return violation(i, t, "POP-EMPTY requires an empty stack");
            }
            let Some(op) = singleton(delta) else {
                return violation(i, t, "failing POP must log one own element");
            };
            (op.method == POP && op.ret == Value::Pair(false, 0))
                .then_some(())
                .ok_or(())
                .or_else(|_| violation(i, t, format!("failing POP logged wrong element {op}")))
        }
        Some(other) => violation(i, t, format!("unknown action label {other}")),
    }
}

/// Heap invariant: the chain from `top` is acyclic and within the arena.
fn check_invariant(
    i: usize,
    tr: &Transition<StackShared, StackLocal>,
) -> Result<(), RgViolation> {
    let s = &tr.post;
    let mut seen = vec![false; s.cells.len()];
    let mut cur = s.top;
    while let Some(k) = cur {
        if k >= s.cells.len() {
            return violation(i, tr.thread, "top chain escapes the arena");
        }
        if seen[k] {
            return violation(i, tr.thread, "top chain is cyclic");
        }
        seen[k] = true;
        cur = s.cells[k].next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_sim::models::stack::FailingStackModel;
    use cal_sim::sched::{Explorer, Workload};
    use cal_sim::OpRequest;

    const S: ObjectId = ObjectId(0);

    fn push(v: i64) -> OpRequest {
        OpRequest::new(PUSH, Value::Int(v))
    }

    fn pop() -> OpRequest {
        OpRequest::new(POP, Value::Unit)
    }

    fn check_all(w: Workload) -> u64 {
        let m = FailingStackModel::new(S);
        let mut n = 0;
        Explorer::new(&m, w)
            .record_transitions(true)
            .visit_duplicates()
            .run(|e| {
                n += 1;
                check_stack_rg(S, e)
                    .unwrap_or_else(|v| panic!("{v}\nhistory:\n{}", e.history));
            });
        n
    }

    #[test]
    fn single_thread_obligations_hold() {
        assert!(check_all(Workload::new(vec![vec![push(1), pop(), pop()]])) > 0);
    }

    #[test]
    fn two_thread_obligations_hold_on_every_schedule() {
        let n = check_all(Workload::new(vec![vec![push(1), pop()], vec![push(2), pop()]]));
        assert!(n > 100);
    }

    #[test]
    fn three_thread_obligations_hold_budgeted() {
        let m = FailingStackModel::new(S);
        let w = Workload::new(vec![vec![push(1)], vec![push(2)], vec![pop()]]);
        let mut n = 0u64;
        Explorer::new(&m, w)
            .record_transitions(true)
            .visit_duplicates()
            .max_paths(30_000)
            .run(|e| {
                n += 1;
                check_stack_rg(S, e).unwrap_or_else(|v| panic!("{v}"));
            });
        assert!(n > 100);
    }

    #[test]
    fn corrupted_transition_is_rejected() {
        let m = FailingStackModel::new(S);
        let w = Workload::new(vec![vec![push(1)]]);
        let mut found = false;
        Explorer::new(&m, w).record_transitions(true).run(|e| {
            if found {
                return;
            }
            if let Some(pos) = e.transitions.iter().position(|tr| tr.label == Some("PUSH")) {
                let mut bad = e.clone();
                bad.transitions[pos].post.top = None; // pretend the push vanished
                assert!(check_stack_rg(S, &bad).is_err());
                found = true;
            }
        });
        assert!(found);
    }
}
