//! Machine-checked rendition of the exchanger proof (§5.1, Figs. 1 and 4).
//!
//! The paper's proof has three ingredients, each of which becomes an
//! executable check over the transition logs produced by `cal-sim`:
//!
//! 1. **Guarantee conformance** — every shared-state transition must be an
//!    instance of one of Fig. 4's actions (`INIT`, `CLEAN`, `PASS`,
//!    `XCHG`, `FAIL`) performed by the stepping thread, or be
//!    environment-invisible (a read, or a private allocation). Since every
//!    thread's steps conform to its guarantee `G_t`, every *other* thread
//!    experiences interference within its rely
//!    `R_t = IRRELEVANT ∨ ∃t' ≠ t. G_{t'}` by construction.
//! 2. **The global invariant `J`** — `g` never holds an unsatisfied offer
//!    of a thread that is not currently inside `exchange` — checked after
//!    every transition.
//! 3. **The proof-outline assertions** of Fig. 1 (`A`, `B(k)` and the
//!    line-16/26/28/30/32 disjunctions) — evaluated at each thread's
//!    current program point after *every* transition, which checks both
//!    that each step establishes its postcondition and that the assertions
//!    are **stable** under the interference of the other threads.

use std::error::Error;
use std::fmt;

use cal_core::{CaElement, ObjectId, Operation, ThreadId, Value};
use cal_sim::models::exchanger::{ExchangerLocal, ExchangerShared, Hole, Offer};
use cal_sim::sched::{Execution, Transition, TransitionKind};
use cal_specs::vocab::EXCHANGE;

/// A violation of a rely/guarantee obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgViolation {
    /// Index of the offending transition in the execution's log.
    pub transition: usize,
    /// The thread whose obligation failed.
    pub thread: ThreadId,
    /// Human-readable description of the failed obligation.
    pub reason: String,
}

impl fmt::Display for RgViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transition {} by {}: {}", self.transition, self.thread, self.reason)
    }
}

impl Error for RgViolation {}

/// The full §5.1 check for one explored execution of the exchanger model:
/// guarantee conformance, invariant `J`, and the Fig. 1 proof outline.
///
/// The execution must have been produced with transition recording enabled
/// (otherwise there is nothing to check and an empty log passes trivially
/// only for the empty workload).
///
/// # Errors
///
/// Returns the first violated obligation.
pub fn check_exchanger_rg(
    object: ObjectId,
    execution: &Execution<ExchangerShared, ExchangerLocal>,
) -> Result<(), RgViolation> {
    let mut baselines: Vec<Option<usize>> = Vec::new();
    for (i, tr) in execution.transitions.iter().enumerate() {
        let t = tr.thread;
        let ti = t.0 as usize;
        if baselines.len() < tr.locals.len() {
            baselines.resize(tr.locals.len(), None);
        }
        if tr.kind == TransitionKind::Invoke {
            // Record the logical variable T = 𝒯_E|t at invocation.
            baselines[ti] = Some(mentions(execution, tr.trace_before, t));
        }
        check_action(object, i, tr, execution)?;
        check_invariant_j(i, tr)?;
        check_outline(object, i, tr, execution, &baselines)?;
        if matches!(tr.kind, TransitionKind::Step { completed: true }) {
            baselines[ti] = None;
        }
    }
    Ok(())
}

/// Number of CA-elements among the first `len` that mention thread `t` —
/// the length of the projection `𝒯|t` (Def. 4).
fn mentions(
    execution: &Execution<ExchangerShared, ExchangerLocal>,
    len: usize,
    t: ThreadId,
) -> usize {
    execution.trace.elements()[..len].iter().filter(|e| e.mentions_thread(t)).count()
}

fn violation(
    transition: usize,
    thread: ThreadId,
    reason: impl Into<String>,
) -> Result<(), RgViolation> {
    Err(RgViolation { transition, thread, reason: reason.into() })
}

/// Fig. 4 guarantee conformance for one transition.
fn check_action(
    object: ObjectId,
    i: usize,
    tr: &Transition<ExchangerShared, ExchangerLocal>,
    execution: &Execution<ExchangerShared, ExchangerLocal>,
) -> Result<(), RgViolation> {
    let t = tr.thread;
    let pre = &tr.pre;
    let post = &tr.post;
    let delta: &[CaElement] = &execution.trace.elements()[tr.trace_before..tr.trace_after];
    if tr.kind == TransitionKind::Invoke {
        if pre != post || !delta.is_empty() {
            return violation(i, t, "invocation must not touch shared state");
        }
        return Ok(());
    }
    match tr.label {
        None => {
            // Environment-invisible: reads, or a private allocation (the
            // failed init CAS still allocated the offer).
            if post.g != pre.g {
                return violation(i, t, "unlabelled step changed g");
            }
            if !delta.is_empty() {
                return violation(i, t, "unlabelled step extended the trace");
            }
            if post.offers.len() > pre.offers.len() + 1
                || post.offers[..pre.offers.len()] != pre.offers[..]
            {
                return violation(i, t, "unlabelled step mutated published offers");
            }
            if post.offers.len() == pre.offers.len() + 1 {
                let fresh = post.offers[pre.offers.len()];
                if fresh.tid != t || fresh.hole != Hole::Null {
                    return violation(i, t, "allocated offer must be fresh and owned");
                }
            }
            Ok(())
        }
        Some("INIT") => {
            // [∃n. g⃐ = null ∧ n.tid = t ∧ n.hole = null ∧ g = n]_g
            let n = pre.offers.len();
            if pre.g.is_some() {
                return violation(i, t, "INIT requires g = null");
            }
            if post.g != Some(n)
                || post.offers.len() != n + 1
                || post.offers[..n] != pre.offers[..]
                || post.offers[n] != (Offer { tid: t, data: post.offers[n].data, hole: Hole::Null })
            {
                return violation(i, t, "INIT must publish a fresh own offer");
            }
            if !delta.is_empty() {
                return violation(i, t, "INIT must not extend the trace");
            }
            Ok(())
        }
        Some("PASS") => {
            // [g.hole⃐ = null ∧ g.tid = t ∧ g.hole = fail]_{g.hole}
            if post.g != pre.g || !delta.is_empty() {
                return violation(i, t, "PASS may only flip one hole");
            }
            let changed: Vec<usize> = diff_offers(pre, post);
            let [n] = changed[..] else {
                return violation(i, t, "PASS must change exactly one offer");
            };
            let (before, after) = (pre.offers[n], post.offers[n]);
            if before.tid != t
                || before.hole != Hole::Null
                || after != (Offer { hole: Hole::Fail, ..before })
            {
                return violation(i, t, "PASS must set own null hole to fail");
            }
            Ok(())
        }
        Some("XCHG") => {
            // [∃n ≠ fail. n.tid = t ∧ g.hole⃐ = null ∧ g.tid ≠ t ∧
            //  g.hole = n ∧ 𝒯 = 𝒯⃐ · E.swap(g.tid, g.data, t, n.data)]
            let Some(c) = pre.g else {
                return violation(i, t, "XCHG requires g ≠ null");
            };
            if post.g != pre.g {
                return violation(i, t, "XCHG must not change g");
            }
            let changed = diff_offers(pre, post);
            if changed != [c] {
                return violation(i, t, "XCHG must change exactly the offer in g");
            }
            let (before, after) = (pre.offers[c], post.offers[c]);
            if before.hole != Hole::Null || before.tid == t {
                return violation(i, t, "XCHG requires an unmatched foreign offer in g");
            }
            let Hole::Matched(n) = after.hole else {
                return violation(i, t, "XCHG must match the hole");
            };
            if (Offer { hole: Hole::Null, ..after }) != before {
                return violation(i, t, "XCHG may only write the hole");
            }
            let own = post.offers[n];
            if own.tid != t {
                return violation(i, t, "XCHG must install the matcher's own offer");
            }
            let expected = swap_element(object, before.tid, before.data, t, own.data);
            if delta != [expected.clone()] {
                return violation(
                    i,
                    t,
                    format!("XCHG must log {expected}, logged {:?}", delta),
                );
            }
            Ok(())
        }
        Some("CLEAN") => {
            // [g⃐.hole ≠ null ∧ g = null]_g
            let Some(c) = pre.g else {
                return violation(i, t, "CLEAN requires g ≠ null");
            };
            if pre.offers[c].hole == Hole::Null {
                return violation(i, t, "CLEAN requires a satisfied or passed offer");
            }
            if post.g.is_some() || post.offers != pre.offers || !delta.is_empty() {
                return violation(i, t, "CLEAN may only null g");
            }
            Ok(())
        }
        Some("FAIL") => {
            // [∃d. 𝒯 = 𝒯⃐ · E.{(t, ex(d) ▷ (false, d))}]_𝒯
            if pre != post {
                return violation(i, t, "FAIL must not touch shared memory");
            }
            let [e] = delta else {
                return violation(i, t, "FAIL must log exactly one element");
            };
            let [op] = e.ops() else {
                return violation(i, t, "FAIL element must be a singleton");
            };
            let ok = e.object() == object
                && op.thread == t
                && op.method == EXCHANGE
                && matches!((op.arg.as_int(), op.ret.as_pair()), (Some(d), Some((false, r))) if d == r);
            if !ok {
                return violation(i, t, format!("FAIL element malformed: {e}"));
            }
            Ok(())
        }
        Some(other) => violation(i, t, format!("unknown action label {other}")),
    }
}

fn diff_offers(pre: &ExchangerShared, post: &ExchangerShared) -> Vec<usize> {
    let common = pre.offers.len().min(post.offers.len());
    let mut changed: Vec<usize> =
        (0..common).filter(|&k| pre.offers[k] != post.offers[k]).collect();
    changed.extend(common..post.offers.len().max(pre.offers.len()));
    changed
}

/// The swap element `E.swap(t, v, t', v')`.
fn swap_element(object: ObjectId, t: ThreadId, v: i64, t2: ThreadId, v2: i64) -> CaElement {
    CaElement::pair(
        Operation::new(t, object, EXCHANGE, Value::Int(v), Value::Pair(true, v2)),
        Operation::new(t2, object, EXCHANGE, Value::Int(v2), Value::Pair(true, v)),
    )
    .expect("swap partners are distinct")
}

/// Invariant `J`: `∀t. g ≠ null ∧ g.hole = null ⟹ InE(g.tid)` — the offer
/// in `g`, while unsatisfied, belongs to a thread currently executing
/// `exchange`.
fn check_invariant_j(
    i: usize,
    tr: &Transition<ExchangerShared, ExchangerLocal>,
) -> Result<(), RgViolation> {
    if let Some(n) = tr.post.g {
        let offer = tr.post.offers[n];
        if offer.hole == Hole::Null {
            let active = tr
                .locals
                .get(offer.tid.0 as usize)
                .map(|l| l.is_some())
                .unwrap_or(false);
            if !active {
                return violation(
                    i,
                    tr.thread,
                    format!("J violated: g holds unsatisfied offer of inactive {}", offer.tid),
                );
            }
        }
    }
    Ok(())
}

/// Fig. 1's proof-outline assertions, evaluated for every in-flight thread
/// at its current program point. Because this runs after *every*
/// transition, it checks stability under interference, not just
/// establishment.
fn check_outline(
    object: ObjectId,
    i: usize,
    tr: &Transition<ExchangerShared, ExchangerLocal>,
    execution: &Execution<ExchangerShared, ExchangerLocal>,
    baselines: &[Option<usize>],
) -> Result<(), RgViolation> {
    let shared = &tr.post;
    let trace_len = tr.trace_after;
    for (ui, local) in tr.locals.iter().enumerate() {
        let Some(local) = local else { continue };
        let u = ThreadId(ui as u32);
        let Some(baseline) = baselines.get(ui).copied().flatten() else { continue };
        let logged = mentions(execution, trace_len, u);
        // A's trace conjunct: 𝒯_E|u = T. B's: 𝒯_E|u = T · E.swap(…).
        let a_trace = logged == baseline;
        let b_trace = |partner: Offer, own_value: i64| -> bool {
            if logged != baseline + 1 {
                return false;
            }
            let last = execution.trace.elements()[..trace_len]
                .iter()
                .rfind(|e| e.mentions_thread(u))
                .expect("logged > 0");
            *last == swap_element(object, u, own_value, partner.tid, partner.data)
        };
        // A's memory conjuncts, parameterized by the own offer.
        let a_mem = |n: usize, v: i64| -> bool {
            let own_ok = shared.offers[n] == (Offer { tid: u, data: v, hole: Hole::Null });
            let g_ok = match shared.g {
                None => true,
                Some(gi) => shared.offers[gi].hole != Hole::Null || shared.offers[gi].tid != u,
            };
            own_ok && g_ok
        };
        let ok = match *local {
            ExchangerLocal::Init { .. } => a_trace,
            // Line 16: (𝒯_E|t = T ∧ n ↦ t,v,null ∧ g = n) ∨ B(n.hole).
            ExchangerLocal::Wait { n, v } | ExchangerLocal::TryPass { n, v } => {
                let first = a_trace
                    && shared.offers[n] == (Offer { tid: u, data: v, hole: Hole::Null })
                    && shared.g == Some(n);
                let second = match shared.offers[n].hole {
                    Hole::Matched(m) => {
                        shared.offers[m].tid != u && b_trace(shared.offers[m], v)
                    }
                    _ => false,
                };
                first || second
            }
            // Between the pass CAS and the fail return: own hole = fail,
            // nothing logged for u yet.
            ExchangerLocal::FailReturn { n, .. } => {
                a_trace && shared.offers[n].hole == Hole::Fail && shared.offers[n].tid == u
            }
            // Line 24: A.
            ExchangerLocal::ReadG { n, v } => a_trace && a_mem(n, v),
            // Line 26/28: A ∧ (g = cur ∨ cur.hole ≠ null) ∧ cur ≠ null ∧ ¬s.
            ExchangerLocal::TryXchg { n, v, cur } => {
                a_trace
                    && a_mem(n, v)
                    && (shared.g == Some(cur) || shared.offers[cur].hole != Hole::Null)
            }
            // Line 30: (¬s ∧ A ∨ s ∧ B(cur)) ∧ cur.hole ≠ null.
            ExchangerLocal::Clean { n, v, cur, s } => {
                let branch = if s {
                    shared.offers[cur].tid != u && b_trace(shared.offers[cur], v)
                } else {
                    a_trace && a_mem(n, v)
                };
                branch && shared.offers[cur].hole != Hole::Null
            }
            // Line 32: s ⟹ B(cur); ¬s keeps A until the FAIL log.
            ExchangerLocal::Finish { n, v, cur, s } => {
                if s {
                    shared.offers[cur].tid != u && b_trace(shared.offers[cur], v)
                } else {
                    a_trace && a_mem(n, v)
                }
            }
        };
        if !ok {
            return violation(
                i,
                u,
                format!("proof-outline assertion violated at {local:?} (shared {shared:?})"),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_sim::models::exchanger::ExchangerModel;
    use cal_sim::sched::{Explorer, Workload};
    use cal_sim::OpRequest;

    const E: ObjectId = ObjectId(0);

    fn exchange(v: i64) -> OpRequest {
        OpRequest::new(EXCHANGE, Value::Int(v))
    }

    fn check_all(workload: Workload) -> u64 {
        let m = ExchangerModel::new(E);
        let mut execs = 0;
        Explorer::new(&m, workload)
            .record_transitions(true)
            .visit_duplicates()
            .run(|e| {
                execs += 1;
                check_exchanger_rg(E, e).unwrap_or_else(|v| panic!("{v}\nhistory:\n{}", e.history));
            });
        execs
    }

    #[test]
    fn single_thread_obligations_hold() {
        assert!(check_all(Workload::new(vec![vec![exchange(1)]])) > 0);
    }

    #[test]
    fn two_thread_obligations_hold_on_every_schedule() {
        let n = check_all(Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]));
        assert!(n > 10);
    }

    #[test]
    fn sequential_ops_per_thread_hold() {
        let n = check_all(Workload::new(vec![vec![exchange(1), exchange(2)], vec![exchange(9)]]));
        assert!(n > 10);
    }

    #[test]
    fn corrupted_execution_is_rejected() {
        // Sanity: the checker is not vacuous. Take a valid execution and
        // corrupt one XCHG transition's logged element.
        let m = ExchangerModel::new(E);
        let w = Workload::new(vec![vec![exchange(3)], vec![exchange(4)]]);
        let mut found = false;
        Explorer::new(&m, w).record_transitions(true).run(|e| {
            if found {
                return;
            }
            if let Some(pos) =
                e.transitions.iter().position(|tr| tr.label == Some("XCHG"))
            {
                let mut bad = e.clone();
                // Pretend the XCHG also flipped g.
                bad.transitions[pos].post.g = None;
                assert!(check_exchanger_rg(E, &bad).is_err());
                found = true;
            }
        });
        assert!(found, "expected at least one XCHG transition");
    }

    #[test]
    fn violation_display_mentions_thread() {
        let v = RgViolation { transition: 3, thread: ThreadId(1), reason: "x".into() };
        assert!(v.to_string().contains("t1"));
        assert!(v.to_string().contains("transition 3"));
    }
}
