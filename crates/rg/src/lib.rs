//! # cal-rg — machine-checked rely/guarantee obligations
//!
//! The paper proves the exchanger concurrency-aware linearizable with a
//! rely/guarantee program logic (§5.1, Fig. 4). This crate renders that
//! proof executable: over the transition logs produced by `cal-sim`'s
//! exhaustive scheduler, it checks
//!
//! - **guarantee conformance** — every transition instantiates one of the
//!   Fig. 4 actions (`INIT`, `CLEAN`, `PASS`, `XCHG`, `FAIL`) or is
//!   environment-invisible;
//! - **the global invariant `J`** of §5.1;
//! - **the proof-outline assertions** of Fig. 1 (`A`, `B(k)` and the
//!   per-line disjunctions), at every program point after every transition
//!   — establishment *and* stability under interference.
//!
//! Exhausting these checks over all interleavings of bounded clients is
//! the executable analogue of the paper's deductive proof.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exchanger_rg;
pub mod stack_rg;

pub use exchanger_rg::{check_exchanger_rg, RgViolation};
pub use stack_rg::check_stack_rg;
