//! E8 — checker scalability: CAL membership cost vs. history length and
//! thread count, the `⊑CAL` agreement check on the logged witness, and
//! the classical linearizability baseline on singleton specifications.
//! Also times E1's Fig. 3 histories as micro cases.

use cal_bench::{exchanger_history, exchanger_trace, ids};
use cal_core::agree::agrees_bool;
use cal_core::check::{check_cal, is_cal};
use cal_core::gen::render;
use cal_core::seqlin;
use cal_core::spec::SeqAsCa;
use cal_core::{Action, History, ThreadId, Value};
use cal_specs::exchanger::ExchangerSpec;
use cal_specs::register::{inc_op, CounterSpec};
use cal_specs::vocab::EXCHANGE;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cal_vs_length(c: &mut Criterion) {
    let spec = ExchangerSpec::new(ids::E0);
    let mut group = c.benchmark_group("cal_check/elements");
    group.sample_size(20);
    for &n in &[4usize, 8, 16, 32, 64] {
        let h = exchanger_history(42, 3, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let outcome = check_cal(h, &spec).unwrap();
                assert!(outcome.verdict.is_cal());
                outcome.stats.nodes
            })
        });
    }
    group.finish();
}

fn bench_cal_vs_threads(c: &mut Criterion) {
    let spec = ExchangerSpec::new(ids::E0);
    let mut group = c.benchmark_group("cal_check/threads");
    group.sample_size(20);
    for &t in &[2u32, 4, 8, 16] {
        // More threads ⇒ more overlap under the same loosening budget.
        let h = exchanger_history(7, t, 24, 48);
        group.bench_with_input(BenchmarkId::from_parameter(t), &h, |b, h| {
            b.iter(|| assert!(is_cal(h, &spec).unwrap()))
        });
    }
    group.finish();
}

fn bench_agreement_witness(c: &mut Criterion) {
    // The modular fast path: validating the logged witness instead of
    // searching for one.
    let mut group = c.benchmark_group("agree/elements");
    group.sample_size(30);
    for &n in &[8usize, 32, 128, 512] {
        let t = exchanger_trace(11, 4, n);
        let h = render(&t);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(h, t), |b, (h, t)| {
            b.iter(|| assert!(agrees_bool(h, t)))
        });
    }
    group.finish();
}

fn bench_seqlin_baseline(c: &mut Criterion) {
    // Classical linearizability (Wing–Gong + memoization) vs. the CAL
    // checker restricted to singletons, on identical counter histories.
    let mut group = c.benchmark_group("seqlin_vs_singleton_cal");
    group.sample_size(20);
    for &n in &[4usize, 8, 16] {
        // n concurrent increments, each overlapping the next.
        let mut actions = Vec::new();
        for i in 0..n {
            actions.push(inc_op(ids::E0, ThreadId(i as u32), 0).invocation());
        }
        for i in 0..n {
            actions.push(
                inc_op(ids::E0, ThreadId(i as u32), i as i64).response(),
            );
        }
        let h = History::from_actions(actions);
        let spec = CounterSpec::new(ids::E0);
        group.bench_with_input(BenchmarkId::new("seqlin", n), &h, |b, h| {
            b.iter(|| assert!(seqlin::is_linearizable(h, &spec).unwrap()))
        });
        let ca = SeqAsCa::new(CounterSpec::new(ids::E0));
        group.bench_with_input(BenchmarkId::new("cal_singleton", n), &h, |b, h| {
            b.iter(|| assert!(is_cal(h, &ca).unwrap()))
        });
    }
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let spec = ExchangerSpec::new(ids::E0);
    let inv = |t: u32, v: i64| Action::invoke(ThreadId(t), ids::E0, EXCHANGE, Value::Int(v));
    let res =
        |t: u32, ok: bool, v: i64| Action::response(ThreadId(t), ids::E0, EXCHANGE, Value::Pair(ok, v));
    let h1 = History::from_actions(vec![
        inv(1, 3),
        inv(2, 4),
        inv(3, 7),
        res(1, true, 4),
        res(2, true, 3),
        res(3, false, 7),
    ]);
    let h3 = History::from_actions(vec![
        inv(1, 3),
        res(1, true, 4),
        inv(2, 4),
        res(2, true, 3),
        inv(3, 7),
        res(3, false, 7),
    ]);
    let mut group = c.benchmark_group("checker_fig3");
    group.bench_function("h1_accept", |b| b.iter(|| assert!(is_cal(&h1, &spec).unwrap())));
    group.bench_function("h3_reject", |b| b.iter(|| assert!(!is_cal(&h3, &spec).unwrap())));
    group.finish();
}

criterion_group!(
    benches,
    bench_cal_vs_length,
    bench_cal_vs_threads,
    bench_agreement_witness,
    bench_seqlin_baseline,
    bench_fig3
);
criterion_main!(benches);
