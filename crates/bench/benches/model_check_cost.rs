//! E2–E4 cost profile: how expensive the exhaustive verification of the
//! paper's theorems is — schedules explored per second for the exchanger
//! (CAL + rely/guarantee) and the elimination stack (modular check).

use cal_core::{ObjectId, Value};
use cal_rg::check_exchanger_rg;
use cal_sim::models::elim_array::ElimArrayModel;
use cal_sim::models::elim_stack::ElimStackModel;
use cal_sim::models::exchanger::ExchangerModel;
use cal_sim::{Explorer, OpRequest, Workload};
use cal_specs::elim_array::FArMap;
use cal_specs::elim_stack::{modular_stack_check, FEsMap};
use cal_specs::vocab::{EXCHANGE, POP, PUSH};
use cal_core::compose::TraceMap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const E: ObjectId = ObjectId(0);

fn exchange(v: i64) -> OpRequest {
    OpRequest::new(EXCHANGE, Value::Int(v))
}

fn bench_exchanger_exploration(c: &mut Criterion) {
    let model = ExchangerModel::new(E);
    let mut group = c.benchmark_group("model_check/exchanger_cal");
    group.sample_size(10);
    for &threads in &[2u32, 3] {
        let w = Workload::new((0..threads).map(|i| vec![exchange(i as i64)]).collect());
        group.bench_with_input(BenchmarkId::from_parameter(threads), &w, |b, w| {
            b.iter(|| {
                let stats = Explorer::new(&model, w.clone()).run(|_| {});
                assert!(stats.paths > 0);
                stats.paths
            })
        });
    }
    group.finish();
}

fn bench_exchanger_rg(c: &mut Criterion) {
    let model = ExchangerModel::new(E);
    let w = Workload::new(vec![vec![exchange(1)], vec![exchange(2)]]);
    let mut group = c.benchmark_group("model_check/exchanger_rg");
    group.sample_size(10);
    group.bench_function("2threads_full_obligations", |b| {
        b.iter(|| {
            let mut n = 0u64;
            Explorer::new(&model, w.clone())
                .record_transitions(true)
                .visit_duplicates()
                .run(|e| {
                    check_exchanger_rg(E, e).unwrap();
                    n += 1;
                });
            n
        })
    });
    group.finish();
}

fn bench_elim_stack_exploration(c: &mut Criterion) {
    const ES: ObjectId = ObjectId(0);
    const S: ObjectId = ObjectId(1);
    const AR: ObjectId = ObjectId(2);
    const E0: ObjectId = ObjectId(10);
    let model = ElimStackModel::new(ES, S, ElimArrayModel::new(AR, vec![E0]), 1);
    let far = FArMap::new(AR, vec![E0]);
    let fes = FEsMap::new(ES, S, AR);
    let w = Workload::new(vec![
        vec![OpRequest::new(PUSH, Value::Int(1))],
        vec![OpRequest::new(POP, Value::Unit)],
    ]);
    let mut group = c.benchmark_group("model_check/elim_stack_modular");
    group.sample_size(10);
    group.bench_function("push_pop_exhaustive", |b| {
        b.iter(|| {
            let mut n = 0u64;
            Explorer::new(&model, w.clone()).run(|e| {
                assert!(modular_stack_check(&fes, &far.apply(&e.trace)));
                n += 1;
            });
            n
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exchanger_exploration,
    bench_exchanger_rg,
    bench_elim_stack_exploration
);
criterion_main!(benches);
