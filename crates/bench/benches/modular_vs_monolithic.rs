//! E5 — the paper's central claim, quantified: verifying the elimination
//! stack *modularly* (per-subobject traces lifted through `F_AR`/`F_ES`
//! and replayed against the sequential stack spec, plus witness agreement
//! — all near-linear passes) versus *monolithically* (a Wing–Gong
//! linearization search over the client-visible history).
//!
//! Two regimes:
//! - **accept**: correct executions. The monolithic search can get lucky —
//!   a greedy order often linearizes — so the two are comparable.
//! - **reject**: a corrupted execution (a pop of a never-pushed value).
//!   The monolithic search must exhaust its space before saying no, and
//!   its cost grows superlinearly with history size; the modular path
//!   fails fast during the linear replay. This is where compositionality
//!   pays.

use cal_bench::{elim_subobject_trace, fes, ids};
use cal_core::agree::agrees_bool;
use cal_core::compose::TraceMap;
use cal_core::gen::render_windowed;
use cal_core::{seqlin, CaElement, CaTrace, History, Operation, ThreadId, Value};
use cal_specs::elim_stack::modular_stack_check;
use cal_specs::stack::StackSpec;
use cal_specs::vocab::POP;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SIZES: &[usize] = &[8, 16, 32, 64, 128, 256];
const WINDOW: usize = 8;
const THREADS: u32 = 16;

fn corrupt(sub: &CaTrace) -> CaTrace {
    let mut bad = sub.clone();
    bad.push(CaElement::singleton(Operation::new(
        ThreadId(THREADS - 1),
        ids::S,
        POP,
        Value::Unit,
        Value::Pair(true, 999_999),
    )));
    bad
}

fn windowed_history(sub: &CaTrace) -> History {
    render_windowed(&fes().apply(sub), WINDOW)
}

fn bench_accept(c: &mut Criterion) {
    let f = fes();
    let spec = StackSpec::total(ids::ES);
    let mut group = c.benchmark_group("verify_elim_stack/accept");
    group.sample_size(15);
    for &n in SIZES {
        let sub = elim_subobject_trace(3, THREADS, n);
        let history = windowed_history(&sub);
        group.bench_with_input(
            BenchmarkId::new("modular", n),
            &(sub.clone(), history.clone()),
            |b, (sub, history)| {
                b.iter(|| {
                    // The three linear passes of the compositional proof:
                    // lift, replay, and witness agreement.
                    let mapped = f.apply(sub);
                    assert!(modular_stack_check(&f, sub));
                    assert!(agrees_bool(history, &mapped));
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("monolithic", n), &history, |b, h| {
            b.iter(|| assert!(seqlin::is_linearizable(h, &spec).unwrap()))
        });
    }
    group.finish();
}

fn bench_reject(c: &mut Criterion) {
    let f = fes();
    let spec = StackSpec::total(ids::ES);
    let mut group = c.benchmark_group("verify_elim_stack/reject");
    group.sample_size(10);
    for &n in SIZES {
        let bad = corrupt(&elim_subobject_trace(3, THREADS, n));
        let history = windowed_history(&bad);
        group.bench_with_input(BenchmarkId::new("modular", n), &bad, |b, bad| {
            b.iter(|| assert!(!modular_stack_check(&f, bad)))
        });
        group.bench_with_input(BenchmarkId::new("monolithic", n), &history, |b, h| {
            b.iter(|| assert!(!seqlin::is_linearizable(h, &spec).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accept, bench_reject);
criterion_main!(benches);
