//! Sequential vs. parallel CAL checking wall-clock — the experiment
//! behind the `--threads` flag. Three series:
//!
//! - **decompose/refute-last** (headline): K stack objects where the
//!   single buggy one is checked *last* by a sequential decomposed
//!   checker. Each healthy object carries an adversarial-but-CAL
//!   history (concurrent pushes, then sequential FIFO-order pops, so
//!   the only consistent linearization is the *last* push permutation
//!   the DFS reaches); the sequential arm pays that search for every
//!   healthy object before finding the refutation. The parallel arm
//!   checks all subhistories concurrently: the worker on the buggy
//!   object refutes it almost immediately and cancels the rest. The
//!   advantage is algorithmic (refutation latency is bounded by the
//!   cheapest counterexample, not iteration order), so it survives even
//!   a single-core host where threads only time-slice.
//! - **decompose/all-cal**: K healthy objects, total throughput. This
//!   one needs real cores to win; the JSON records the host's
//!   parallelism so a 1-core container's ~1x is interpretable.
//! - **frontier/hard**: one object, the adversarial odd-k
//!   identical-exchange history. Root-frontier splitting with a shared
//!   memo table; reported honestly — shared-memo overlap means it scales
//!   far less than decomposition.
//! - **seqlin/frontier-stack-8**: the classical linearizability checker
//!   on the adversarial single-object stack history, sequential vs.
//!   frontier-split parallel. Exists because seqlin now runs on the same
//!   search kernel as CAL; same honest caveat as frontier/hard.
//! - **interval/disjoint-views**: the interval checker refuting k
//!   pairwise-concurrent `write_snapshot(i) ▷ {i}` calls (at most one op
//!   can close with a singleton view, so k ≥ 2 is unsatisfiable).
//! - **stream/replay-throughput**: the streaming checker replaying a
//!   long concurrent exchange stream through a 64-entry window at
//!   verdict parity with the batch checker; its stats column records
//!   events/sec and the retirement counters.
//!
//! Writes `BENCH_checker.json` at the workspace root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cal_core::check::{check_cal_with, CheckOptions, CheckOutcome, Verdict};
use cal_core::gen::render_loose;
use cal_core::interval::{check_interval_par_with, check_interval_with};
use cal_core::obs::{CountingSink, StatsSink};
use cal_core::par::check_cal_par_with;
use cal_core::seqlin::{check_linearizable_par_with, check_linearizable_with};
use cal_core::spec::{CaSpec, PerObject, SeqAsCa};
use cal_core::{Action, History, ObjectId, ThreadId, Value};
use cal_specs::exchanger::ExchangerSpec;
use cal_specs::snapshot::{view, write_snapshot_op, WriteSnapshotSpec};
use cal_specs::stack::StackSpec;
use cal_specs::gen::random_exchanger_trace;
use cal_specs::vocab::{EXCHANGE, POP, PUSH};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: usize = 4;
const OBJECTS: u32 = 4;
const SAMPLES: usize = 5;

/// Median wall-clock of `SAMPLES` runs of `f`.
fn measure<F: FnMut()>(mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[SAMPLES / 2]
}

/// A loosened random exchanger history on `object` (CAL by construction).
fn healthy_block(seed: u64, object: ObjectId, elements: usize, moves: usize) -> Vec<Action> {
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = random_exchanger_trace(&mut rng, object, 4, elements);
    render_loose(&trace, &mut rng, moves).actions().to_vec()
}

/// An adversarial-but-CAL stack block: `k` pairwise-concurrent pushes
/// followed by `k` *sequential* pops in FIFO order. The only stack
/// linearization popping 1, 2, ..., k is pushing k, ..., 2, 1 — the
/// last push permutation the DFS enumerates — so the witness search
/// explores nearly the whole permutation tree before succeeding.
fn hard_cal_stack_block(object: ObjectId, base: u32, k: i64) -> Vec<Action> {
    let mut a = Vec::new();
    for i in 1..=k {
        a.push(Action::invoke(ThreadId(base + i as u32), object, PUSH, Value::Int(i)));
    }
    for i in 1..=k {
        a.push(Action::response(ThreadId(base + i as u32), object, PUSH, Value::Bool(true)));
    }
    for i in 1..=k {
        a.push(Action::invoke(ThreadId(base + i as u32), object, POP, Value::Unit));
        a.push(Action::response(ThreadId(base + i as u32), object, POP, Value::Pair(true, i)));
    }
    a
}

/// A tiny refutable stack block: pop returns a value never pushed.
fn buggy_stack_block(object: ObjectId, t: u32) -> Vec<Action> {
    vec![
        Action::invoke(ThreadId(t), object, PUSH, Value::Int(1)),
        Action::response(ThreadId(t), object, PUSH, Value::Bool(true)),
        Action::invoke(ThreadId(t), object, POP, Value::Unit),
        Action::response(ThreadId(t), object, POP, Value::Pair(true, 2)),
    ]
}

/// `objects` sequential exchanger blocks on distinct objects.
fn multi_object_history(seed: u64, objects: u32, elements: usize, moves: usize) -> History {
    let mut actions = Vec::new();
    for o in 0..objects {
        actions.extend(healthy_block(
            seed ^ (o as u64).wrapping_mul(0x9E37_79B9),
            ObjectId(o),
            elements,
            moves,
        ));
    }
    History::from_actions(actions)
}

/// `objects` stack blocks: all adversarial-but-CAL except the last,
/// which is the tiny refutable one.
fn refute_last_history(objects: u32, k: i64) -> History {
    let mut actions = Vec::new();
    for o in 0..objects {
        let id = ObjectId(o);
        if o == objects - 1 {
            actions.extend(buggy_stack_block(id, 200));
        } else {
            actions.extend(hard_cal_stack_block(id, o * 32, k));
        }
    }
    History::from_actions(actions)
}

/// The adversarial frontier history: `k` pairwise-concurrent identical
/// exchanges; odd `k` leaves one op unmatched, so refutation must
/// exhaust the matching space.
fn hard_frontier_history(k: u32) -> History {
    let mut actions = Vec::new();
    for t in 0..k {
        actions.push(Action::invoke(ThreadId(t), ObjectId(0), EXCHANGE, Value::Int(1)));
    }
    for t in 0..k {
        actions.push(Action::response(ThreadId(t), ObjectId(0), EXCHANGE, Value::Pair(true, 1)));
    }
    History::from_actions(actions)
}

fn exchanger_spec() -> PerObject<ExchangerSpec> {
    PerObject::new((0..OBJECTS).map(|o| (ObjectId(o), ExchangerSpec::new(ObjectId(o)))).collect())
}

fn stack_spec() -> PerObject<SeqAsCa<StackSpec>> {
    PerObject::new(
        (0..OBJECTS)
            .map(|o| (ObjectId(o), SeqAsCa::new(StackSpec::total(ObjectId(o)))))
            .collect(),
    )
}

struct Series {
    name: &'static str,
    seq_ms: f64,
    par_ms: f64,
    speedup: f64,
    /// [`cal_core::obs::SearchReport`] JSON from one instrumented
    /// (untimed) run of the parallel arm — search shape, not wall-clock.
    stats: String,
}

impl Series {
    fn new(name: &'static str, seq: Duration, par: Duration, stats: String) -> Self {
        Series {
            name,
            seq_ms: seq.as_secs_f64() * 1e3,
            par_ms: par.as_secs_f64() * 1e3,
            speedup: seq.as_secs_f64() / par.as_secs_f64(),
            stats,
        }
    }
}

/// One extra run of `check` with a [`CountingSink`] attached, outside
/// the timed samples so instrumentation cannot skew the medians. Works
/// for any checker on the shared kernel (any witness type `W`). Returns
/// the resulting [`cal_core::obs::SearchReport`] as a JSON object.
fn instrumented<W>(threads: usize, check: impl FnOnce(&CheckOptions) -> CheckOutcome<W>) -> String {
    let sink = Arc::new(CountingSink::new());
    let options = CheckOptions {
        threads,
        sink: Some(Arc::clone(&sink) as Arc<dyn StatsSink>),
        ..CheckOptions::default()
    };
    let start = Instant::now();
    let out = check(&options);
    sink.report(&out, &options, start.elapsed()).to_json()
}

/// [`instrumented`] specialised to the parallel CAL checker.
fn instrumented_stats<S>(h: &History, spec: &S, threads: usize) -> String
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    instrumented(threads, |options| {
        check_cal_par_with(h, spec, options).expect("instrumented run")
    })
}

/// A sequential decomposed checker: each subhistory in object order,
/// stopping at the first refutation. Returns true if some object failed.
fn sequential_decomposed<S: CaSpec + Clone>(h: &History, spec: &PerObject<S>) -> bool {
    let options = CheckOptions::default();
    for o in 0..OBJECTS {
        let sub = h.project_object(ObjectId(o));
        let part = spec.restrict(ObjectId(o)).expect("restrictable");
        let out = check_cal_with(&sub, &part, &options).unwrap();
        if matches!(out.verdict, Verdict::NotCal) {
            return true;
        }
    }
    false
}

fn bench_refute_last() -> Series {
    let h = refute_last_history(OBJECTS, 8);
    let spec = stack_spec();

    let seq = measure(|| assert!(sequential_decomposed(&h, &spec)));

    let par_options = CheckOptions { threads: THREADS, ..CheckOptions::default() };
    let par = measure(|| {
        let out = check_cal_par_with(&h, &spec, &par_options).unwrap();
        assert!(matches!(out.verdict, Verdict::NotCal));
    });

    Series::new("decompose/refute-last-stacks", seq, par, instrumented_stats(&h, &spec, THREADS))
}

fn bench_all_cal() -> Series {
    let h = multi_object_history(42, OBJECTS, 256, 2048);
    let spec = exchanger_spec();

    let seq = measure(|| assert!(!sequential_decomposed(&h, &spec)));

    let par_options = CheckOptions { threads: THREADS, ..CheckOptions::default() };
    let par = measure(|| {
        let out = check_cal_par_with(&h, &spec, &par_options).unwrap();
        assert!(matches!(out.verdict, Verdict::Cal(_)));
    });

    Series::new("decompose/all-cal", seq, par, instrumented_stats(&h, &spec, THREADS))
}

fn bench_frontier() -> Series {
    let h = hard_frontier_history(11);
    let spec = ExchangerSpec::new(ObjectId(0));
    let options = CheckOptions::default();

    let seq = measure(|| {
        let out = check_cal_with(&h, &spec, &options).unwrap();
        assert!(matches!(out.verdict, Verdict::NotCal));
    });

    let par_options = CheckOptions { threads: THREADS, ..CheckOptions::default() };
    let par = measure(|| {
        let out = check_cal_par_with(&h, &spec, &par_options).unwrap();
        assert!(matches!(out.verdict, Verdict::NotCal));
    });

    Series::new("frontier/hard-11", seq, par, instrumented_stats(&h, &spec, THREADS))
}

/// `k` pairwise-concurrent `write_snapshot(i) ▷ {i}` calls: at most one
/// op can ever close with a singleton view, so `k ≥ 2` is unsatisfiable,
/// but the point enumeration the interval checker must exhaust is large.
fn disjoint_views_history(k: usize) -> History {
    let o = ObjectId(0);
    let ops: Vec<_> = (0..k)
        .map(|i| write_snapshot_op(o, ThreadId(i as u32), i as i64, view(&[i as i64])))
        .collect();
    let mut actions = Vec::new();
    actions.extend(ops.iter().map(|op| op.invocation()));
    actions.extend(ops.iter().map(|op| op.response()));
    History::from_actions(actions)
}

fn bench_seqlin() -> Series {
    let h = History::from_actions(hard_cal_stack_block(ObjectId(0), 0, 8));
    let spec = StackSpec::total(ObjectId(0));
    let options = CheckOptions::default();

    let seq = measure(|| {
        let out = check_linearizable_with(&h, &spec, &options).unwrap();
        assert!(matches!(out.verdict, Verdict::Cal(_)));
    });

    let par_options = CheckOptions { threads: THREADS, ..CheckOptions::default() };
    let par = measure(|| {
        let out = check_linearizable_par_with(&h, &spec, &par_options).unwrap();
        assert!(matches!(out.verdict, Verdict::Cal(_)));
    });

    let stats = instrumented(THREADS, |o| {
        check_linearizable_par_with(&h, &spec, o).expect("instrumented run")
    });
    Series::new("seqlin/frontier-stack-8", seq, par, stats)
}

fn bench_interval() -> Series {
    let h = disjoint_views_history(6);
    let spec = WriteSnapshotSpec::new(ObjectId(0), 4);
    let options = CheckOptions::default();

    let seq = measure(|| {
        let out = check_interval_with(&h, &spec, &options).unwrap();
        assert!(matches!(out.verdict, Verdict::NotCal));
    });

    let par_options = CheckOptions { threads: THREADS, ..CheckOptions::default() };
    let par = measure(|| {
        let out = check_interval_par_with(&h, &spec, &par_options).unwrap();
        assert!(matches!(out.verdict, Verdict::NotCal));
    });

    let stats = instrumented(THREADS, |o| {
        check_interval_par_with(&h, &spec, o).expect("instrumented run")
    });
    Series::new("interval/disjoint-views-6", seq, par, stats)
}

/// `pairs` overlapping exchange rendezvous on one object: the canonical
/// streaming workload (each pair closes a retirement boundary, but every
/// segment is genuinely concurrent and goes through the real search).
fn stream_replay_history(pairs: u64) -> History {
    let ex = cal_specs::vocab::EXCHANGE;
    let o = ObjectId(0);
    let mut actions = Vec::with_capacity(4 * pairs as usize);
    for i in 0..pairs {
        let (a, b) = (ThreadId(0), ThreadId(1));
        let (va, vb) = ((i % 100) as i64, ((i + 1) % 100) as i64);
        actions.push(Action::invoke(a, o, ex, Value::Int(va)));
        actions.push(Action::invoke(b, o, ex, Value::Int(vb)));
        actions.push(Action::response(a, o, ex, Value::Pair(true, vb)));
        actions.push(Action::response(b, o, ex, Value::Pair(true, va)));
    }
    History::from_actions(actions)
}

/// Streaming replay throughput at verdict parity: the same history is
/// decided by the batch checker (`seq` arm) and replayed through
/// [`StreamChecker`] with a bounded window (`par` arm); both must say
/// consistent. The stats column records events/sec and the retirement
/// counters instead of a `SearchReport` — the interesting shape here is
/// the window's, not one search's.
fn bench_stream_replay() -> Series {
    use cal_core::stream::{Push, StreamChecker, StreamOptions, StreamVerdict};

    // Sized by the *batch* arm: its witness search is superlinear in
    // history length (~0.6 s at 800 pairs, minutes at 10k), while the
    // streaming arm is linear — which is the point of the series. The
    // 10M-event streaming-only numbers live in EXPERIMENTS E16.
    let pairs = 1_000u64;
    let h = stream_replay_history(pairs);
    let spec = ExchangerSpec::new(ObjectId(0));
    let options = CheckOptions::default();

    let seq = measure(|| {
        let out = check_cal_with(&h, &spec, &options).unwrap();
        assert!(matches!(out.verdict, Verdict::Cal(_)), "batch arm must accept");
    });

    let stream_opts =
        StreamOptions { max_window: 64, checkpoint_every: 256, ..StreamOptions::default() };
    let replay = || {
        let mut c = StreamChecker::new(spec, stream_opts.clone());
        for action in h.actions() {
            assert_eq!(c.push(*action), Push::Admitted);
        }
        assert_eq!(c.finish(), StreamVerdict::Consistent, "stream arm must agree");
        c
    };
    let par = measure(|| {
        replay();
    });

    let c = replay();
    let s = c.stats();
    let events = s.events;
    let ops_per_sec = (events / 2) as f64 / par.as_secs_f64();
    let stats = format!(
        "{{\"events\": {events}, \"ops_per_sec\": {ops_per_sec:.0}, \
         \"max_window\": {}, \"peak_window\": {}, \"retired_actions\": {}, \
         \"retired_segments\": {}, \"checkpoints\": {}, \"saturated\": {}}}",
        stream_opts.max_window,
        s.peak_window,
        s.retired_actions,
        s.retired_segments,
        s.checkpoints,
        s.saturated,
    );
    Series::new("stream/replay-throughput", seq, par, stats)
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let series = vec![
        bench_refute_last(),
        bench_all_cal(),
        bench_frontier(),
        bench_seqlin(),
        bench_interval(),
        bench_stream_replay(),
    ];

    let mut json = String::from("{\n  \"benchmark\": \"parallel_checker\",\n");
    json.push_str(&format!("  \"threads\": {THREADS},\n  \"host_cores\": {cores},\n"));
    // A host with fewer cores than configured threads can only
    // time-slice: wall-clock speedups below are then lower bounds, not
    // measurements of parallel scaling.
    json.push_str(&format!("  \"degraded\": {},\n", cores < THREADS));
    json.push_str("  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seq_ms\": {:.3}, \"par_ms\": {:.3}, \"speedup\": {:.3}, \"stats\": {}}}{}\n",
            s.name,
            s.seq_ms,
            s.par_ms,
            s.speedup,
            s.stats,
            if i + 1 < series.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checker.json");
    std::fs::write(out, &json).expect("write BENCH_checker.json");

    for s in &series {
        println!(
            "{:<24} seq {:>8.2} ms   par({THREADS}) {:>8.2} ms   speedup {:.2}x",
            s.name, s.seq_ms, s.par_ms, s.speedup
        );
    }
    println!("host cores: {cores}");
    println!("wrote {out}");

    // The refute-last series is the headline claim and must hold on any
    // host: parallel decomposition bounds refutation latency by the
    // cheapest counterexample, not by object iteration order.
    let headline = &series[0];
    assert!(
        headline.speedup >= 1.8,
        "refute-last speedup {:.2}x below the 1.8x floor",
        headline.speedup
    );
}
