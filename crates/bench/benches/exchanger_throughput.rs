//! E7 — the exchanger as a CA-object in the wild: throughput and pairing
//! rate versus thread count and spin budget. At low concurrency failures
//! dominate (the CA-trace is mostly singletons); pairing needs overlap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cal_objects::arena_exchanger::ArenaExchanger;
use cal_objects::exchanger::Exchanger;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const OPS: i64 = 400;

/// Runs the workload and returns the number of successful exchanges.
fn run(threads: u32, spin: usize) -> u64 {
    let e = Arc::new(Exchanger::new());
    let successes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let e = Arc::clone(&e);
            let successes = Arc::clone(&successes);
            scope.spawn(move || {
                for i in 0..OPS {
                    if e.exchange((t as i64) * 1_000_000 + i, spin).0 {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    successes.load(Ordering::Relaxed)
}

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchanger_throughput/threads");
    group.sample_size(10);
    for &threads in &[1u32, 2, 4, 8, 16] {
        group.throughput(Throughput::Elements(OPS as u64 * threads as u64));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| run(t, 64))
        });
        // Report the pairing rate once per configuration (shape data for
        // EXPERIMENTS.md).
        let paired = run(threads, 64);
        eprintln!(
            "exchanger pairing rate: threads={threads} spin=64 → {paired}/{} ops succeeded",
            OPS * threads as i64
        );
    }
    group.finish();
}

fn bench_spin_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchanger_throughput/spin");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64 * 4));
    for &spin in &[0usize, 16, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(spin), &spin, |b, &s| {
            b.iter(|| run(4, s))
        });
        let paired = run(4, spin);
        eprintln!(
            "exchanger pairing rate: threads=4 spin={spin} → {paired}/{} ops succeeded",
            OPS * 4
        );
    }
    group.finish();
}

/// Runs the arena workload and returns the number of successful exchanges.
fn run_arena(threads: u32, slots: usize, spin: usize) -> u64 {
    let a = Arc::new(ArenaExchanger::new(slots, spin));
    let successes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let a = Arc::clone(&a);
            let successes = Arc::clone(&successes);
            scope.spawn(move || {
                for i in 0..OPS {
                    if a.exchange((t as i64) * 1_000_000 + i, 3).0 {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    successes.load(Ordering::Relaxed)
}

/// Single slot vs. the adaptive Scherer–Lea–Scott arena, under growing
/// concurrency: the arena spreads rendezvous across slots, cutting
/// contention on the single hot word.
fn bench_arena_vs_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchanger_throughput/arena_vs_single");
    group.sample_size(10);
    for &threads in &[2u32, 4, 8, 16] {
        group.throughput(Throughput::Elements(OPS as u64 * threads as u64));
        group.bench_with_input(BenchmarkId::new("single", threads), &threads, |b, &t| {
            b.iter(|| run(t, 64))
        });
        group.bench_with_input(BenchmarkId::new("arena8", threads), &threads, |b, &t| {
            b.iter(|| run_arena(t, 8, 64))
        });
        let paired = run_arena(threads, 8, 64);
        eprintln!(
            "arena pairing rate: threads={threads} slots=8 → {paired}/{} ops succeeded",
            OPS * threads as i64
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threads, bench_spin_budget, bench_arena_vs_single);
criterion_main!(benches);
