//! Ablations of the two design choices DESIGN.md calls out:
//!
//! - **memoization** in the Wing–Gong / CAL search (Lowe's optimization):
//!   on rejecting instances the search must exhaust its space, and without
//!   the failed-state cache the cost grows factorially;
//! - **state-space pruning** in the exhaustive scheduler: identical
//!   `(shared, locals, history, trace)` states have identical subtrees, so
//!   revisits can be cut; this is what makes 3-thread exhaustive
//!   exploration feasible (~17M raw interleavings collapse to ~1.4k).

use cal_core::check::CheckOptions;
use cal_core::{seqlin, History, ObjectId, ThreadId, Value};
use cal_sim::models::exchanger::ExchangerModel;
use cal_sim::{Explorer, OpRequest, Workload};

use cal_specs::vocab::EXCHANGE;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A rejecting register history: `n` fully-concurrent writes of distinct
/// values plus one concurrent read of a never-written value. The checker
/// must exhaust the interleaving space to say no: without memoization that
/// space is the `n!` write orders; with it, the far smaller set of
/// `(matched-set, register-state)` pairs.
fn rejecting_register_history(n: usize) -> History {
    use cal_specs::register::{read_op, write_op};
    let mut actions = Vec::new();
    for i in 0..n {
        actions.push(write_op(ObjectId(0), ThreadId(i as u32), i as i64).invocation());
    }
    actions.push(read_op(ObjectId(0), ThreadId(n as u32), 999).invocation());
    for i in 0..n {
        actions.push(write_op(ObjectId(0), ThreadId(i as u32), i as i64).response());
    }
    actions.push(read_op(ObjectId(0), ThreadId(n as u32), 999).response());
    History::from_actions(actions)
}

fn bench_memoization(c: &mut Criterion) {
    use cal_specs::register::RegisterSpec;
    let spec = RegisterSpec::new(ObjectId(0));
    let mut group = c.benchmark_group("ablation/memoization_reject");
    group.sample_size(10);
    for &n in &[5usize, 6, 7, 8] {
        let h = rejecting_register_history(n);
        let with = CheckOptions::default();
        let without = CheckOptions { memoize: false, ..CheckOptions::default() };
        group.bench_with_input(BenchmarkId::new("memo_on", n), &h, |b, h| {
            b.iter(|| {
                let out = seqlin::check_linearizable_with(h, &spec, &with).unwrap();
                assert!(!out.verdict.is_cal());
                out.stats.nodes
            })
        });
        group.bench_with_input(BenchmarkId::new("memo_off", n), &h, |b, h| {
            b.iter(|| {
                let out = seqlin::check_linearizable_with(h, &spec, &without).unwrap();
                assert!(!out.verdict.is_cal());
                out.stats.nodes
            })
        });
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    const E: ObjectId = ObjectId(0);
    let model = ExchangerModel::new(E);
    let mut group = c.benchmark_group("ablation/scheduler_pruning");
    group.sample_size(10);
    let workloads = [
        ("2x1", Workload::new(vec![
            vec![OpRequest::new(EXCHANGE, Value::Int(1))],
            vec![OpRequest::new(EXCHANGE, Value::Int(2))],
        ])),
        ("2x2", Workload::new(vec![
            vec![OpRequest::new(EXCHANGE, Value::Int(1)), OpRequest::new(EXCHANGE, Value::Int(2))],
            vec![OpRequest::new(EXCHANGE, Value::Int(3)), OpRequest::new(EXCHANGE, Value::Int(4))],
        ])),
    ];
    for (name, w) in &workloads {
        group.bench_with_input(BenchmarkId::new("prune_on", name), w, |b, w| {
            b.iter(|| Explorer::new(&model, w.clone()).run(|_| {}).paths)
        });
        group.bench_with_input(BenchmarkId::new("prune_off", name), w, |b, w| {
            b.iter(|| Explorer::new(&model, w.clone()).no_pruning().run(|_| {}).paths)
        });
    }
    group.finish();
}

/// Recorder overhead: exercising an exchanger with no recording, with the
/// mutex recorder, and with the lock-free recorder — quantifies how much
/// the observation perturbs the observed object.
fn bench_recorder_overhead(c: &mut Criterion) {
    use cal_core::{Method, ObjectId as Oid, ThreadId};
    use cal_objects::exchanger::Exchanger;
    use cal_objects::record::{LockFreeRecorder, Recorder};
    use std::sync::Arc;
    const OPS: i64 = 300;
    const EXCHANGE: Method = Method("exchange");

    fn run(threads: u32, record: impl Fn(ThreadId, i64, (bool, i64)) + Sync) {
        let e = Arc::new(Exchanger::new());
        std::thread::scope(|s| {
            for t in 0..threads {
                let e = Arc::clone(&e);
                let record = &record;
                s.spawn(move || {
                    for i in 0..OPS {
                        let v = (t as i64) * 100_000 + i;
                        let r = e.exchange(v, 16);
                        record(ThreadId(t), v, r);
                    }
                });
            }
        });
    }

    let mut group = c.benchmark_group("ablation/recorder_overhead");
    group.sample_size(10);
    for &threads in &[2u32, 4] {
        group.bench_with_input(BenchmarkId::new("none", threads), &threads, |b, &t| {
            b.iter(|| run(t, |_, _, _| {}))
        });
        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter(|| {
                let rec = Recorder::new();
                run(t, |tid, v, (ok, got)| {
                    rec.invoke(tid, Oid(0), EXCHANGE, Value::Int(v));
                    rec.response(tid, Oid(0), EXCHANGE, Value::Pair(ok, got));
                });
                rec.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("lockfree", threads), &threads, |b, &t| {
            b.iter(|| {
                let rec = LockFreeRecorder::new();
                run(t, |tid, v, (ok, got)| {
                    rec.invoke(tid, Oid(0), EXCHANGE, Value::Int(v));
                    rec.response(tid, Oid(0), EXCHANGE, Value::Pair(ok, got));
                });
                rec.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memoization, bench_pruning, bench_recorder_overhead);
criterion_main!(benches);
