//! E6 — the scalability claim the paper imports from Hendler et al. [10]:
//! under contention, the elimination stack outperforms a plain retrying
//! (Treiber) stack, because matching push/pop pairs cancel in the
//! elimination array instead of serializing on `top`.
//!
//! Each measured iteration runs `threads` OS threads, each performing
//! `OPS` push+pop pairs. Also sweeps the elimination-array width `K`.

use std::sync::Arc;

use cal_objects::elim_stack::EliminationStack;
use cal_objects::stack::TreiberStack;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const OPS: i64 = 300;
const THREADS: &[u32] = &[1, 2, 4, 8];

fn run_treiber(threads: u32) {
    let s = Arc::new(TreiberStack::new());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 0..OPS {
                    s.push((t as i64) * 1_000_000 + i);
                    let mut spins = 0u32;
                    loop {
                        if s.pop().0 {
                            break;
                        }
                        spins += 1;
                        if spins > 1_000_000 {
                            panic!("pop starved");
                        }
                    }
                }
            });
        }
    });
}

fn run_elimination(threads: u32, k: usize) {
    let s = Arc::new(EliminationStack::new(k, 128));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 0..OPS {
                    s.push((t as i64) * 1_000_000 + i);
                    s.pop_wait();
                }
            });
        }
    });
}

fn bench_stacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_throughput");
    group.sample_size(10);
    for &threads in THREADS {
        group.throughput(Throughput::Elements(2 * OPS as u64 * threads as u64));
        group.bench_with_input(BenchmarkId::new("treiber", threads), &threads, |b, &t| {
            b.iter(|| run_treiber(t))
        });
        group.bench_with_input(
            BenchmarkId::new("elimination_k2", threads),
            &threads,
            |b, &t| b.iter(|| run_elimination(t, 2)),
        );
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("elimination_k_sweep/4threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2 * OPS as u64 * 4));
    for &k in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| run_elimination(4, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stacks, bench_k_sweep);
criterion_main!(benches);
