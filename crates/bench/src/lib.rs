//! # cal-bench — shared helpers for the experiment benchmarks
//!
//! Each bench target in `benches/` regenerates one experiment row/series of
//! `EXPERIMENTS.md`; this crate hosts the workload builders they share.

#![warn(missing_docs)]

use cal_core::compose::TraceMap;
use cal_core::gen::{render, render_loose};
use cal_core::{CaTrace, History};
use cal_specs::elim_stack::FEsMap;
use cal_specs::gen::{random_elim_subobject_trace, random_exchanger_trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The standard object ids used across the benches.
pub mod ids {
    use cal_core::ObjectId;
    /// The elimination stack.
    pub const ES: ObjectId = ObjectId(0);
    /// The central stack.
    pub const S: ObjectId = ObjectId(1);
    /// The elimination array.
    pub const AR: ObjectId = ObjectId(2);
    /// A standalone exchanger (also the array's first slot).
    pub const E0: ObjectId = ObjectId(10);
}

/// A deterministic exchanger history of `elements` CA-elements over
/// `threads` threads, loosened by `moves` hoists.
pub fn exchanger_history(seed: u64, threads: u32, elements: usize, moves: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = random_exchanger_trace(&mut rng, ids::E0, threads, elements);
    render_loose(&trace, &mut rng, moves)
}

/// A deterministic exchanger trace (for agreement/replay benches).
pub fn exchanger_trace(seed: u64, threads: u32, elements: usize) -> CaTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    random_exchanger_trace(&mut rng, ids::E0, threads, elements)
}

/// A deterministic elimination-stack *subobject* trace (elements of `S`
/// and `AR`) whose `F_ES` image is a legal stack history.
pub fn elim_subobject_trace(seed: u64, threads: u32, elements: usize) -> CaTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    random_elim_subobject_trace(&mut rng, &fes(), threads, elements)
}

/// The bench-standard `F_ES`.
pub fn fes() -> FEsMap {
    FEsMap::new(ids::ES, ids::S, ids::AR)
}

/// The abstract elimination-stack history rendered (loosely) from a
/// subobject trace — the input of the monolithic checking path.
pub fn abstract_es_history(seed: u64, threads: u32, elements: usize, moves: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let sub = random_elim_subobject_trace(&mut rng, &fes(), threads, elements);
    let mapped = fes().apply(&sub);
    if moves == 0 {
        render(&mapped)
    } else {
        render_loose(&mapped, &mut rng, moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_well_formed_inputs() {
        let h = exchanger_history(1, 3, 8, 10);
        assert!(h.is_well_formed());
        assert!(h.is_complete());
        let t = elim_subobject_trace(1, 3, 8);
        assert_eq!(t.len(), 8);
        assert!(exchanger_trace(1, 3, 5).len() == 5);
        let ah = abstract_es_history(1, 3, 12, 8);
        assert!(ah.is_well_formed());
    }
}
